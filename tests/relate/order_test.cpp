#include "relate/order.h"

#include <gtest/gtest.h>

#include "config/builders.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

namespace rcfg::relate {
namespace {

config::DeviceConfig with_deny_dst(config::DeviceConfig dev, net::Ipv4Prefix dst,
                                   const std::string& iface) {
  config::Acl acl;
  acl.name = "ORD-DENY";
  config::AclRule deny;
  deny.seq = 10;
  deny.action = config::Action::kDeny;
  deny.dst = dst;
  acl.rules.push_back(deny);
  config::AclRule permit;
  permit.seq = 20;
  permit.action = config::Action::kPermit;
  acl.rules.push_back(permit);
  dev.acls[acl.name] = acl;
  dev.find_interface(iface)->acl_in = acl.name;
  return dev;
}

/// Chain n0-0 — n1-0 — n2-0 where the base quarantines n2-0's host prefix
/// with an ACL on the middle device. The rollout wants to move the filter
/// to the edge (n2-0) and then remove the middle ACL — safe only in that
/// order.
struct Rig {
  topo::Topology topo = topo::make_grid(3, 1);
  config::NetworkConfig clean;    ///< no ACLs anywhere
  config::NetworkConfig base;     ///< middle ACL installed
  net::Ipv4Prefix victim;
  verify::RealConfig rc{topo};

  Rig() {
    clean = config::build_ospf_network(topo);
    victim = config::host_prefix(topo.find_node("n2-0"));
    base = clean;
    base.devices.at("n1-0") =
        with_deny_dst(clean.devices.at("n1-0"), victim, "to-n0-0");
    rc.apply(base);
    // Both policies hold at base and must keep holding at every prefix.
    rc.require_isolated("n0-0", "n2-0", victim);
    rc.require_reachable("n0-0", "n1-0",
                         config::host_prefix(topo.find_node("n1-0")));
  }

  UpdateStep cleanup_step() const {
    UpdateStep s;
    s.name = "core-cleanup";
    s.patch.devices["n1-0"] = clean.devices.at("n1-0");
    return s;
  }
  UpdateStep edge_step(bool broken = false) const {
    UpdateStep s;
    s.name = "edge-install";
    // The broken variant "touches" the edge device but forgets the filter.
    s.patch.devices["n2-0"] =
        broken ? clean.devices.at("n2-0")
               : with_deny_dst(clean.devices.at("n2-0"), victim, "to-n1-0");
    return s;
  }
};

TEST(Order, BacktracksToTheSafeOrder) {
  Rig rig;
  // Steps given in the UNSAFE order: greedy tries the cleanup first, sees
  // the isolation policy break mid-rollout, and backtracks.
  UpdateOrderSynthesizer synth(rig.rc, rig.base);
  const OrderResult r = synth.synthesize({rig.cleanup_step(), rig.edge_step()});

  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.blocking.empty());
  ASSERT_EQ(r.order, (std::vector<std::size_t>{1, 0}));
  ASSERT_EQ(r.verdicts.size(), 2u);
  EXPECT_EQ(r.verdicts[0].step, 1u);
  EXPECT_EQ(r.verdicts[1].step, 0u);
  EXPECT_TRUE(r.verdicts[0].violated.empty());
  // Three placements were verified: the failed greedy try plus the two
  // steps of the safe order.
  EXPECT_EQ(r.explored, 3u);
  EXPECT_GE(r.restores, 3u);

  // The failed placement was recorded with the violated policy.
  // (It is not part of the returned order.)
  for (const StepVerdict& v : r.verdicts) EXPECT_TRUE(v.converged);
}

TEST(Order, NamesTheMinimalBlockingStep) {
  Rig rig;
  // The edge step forgets the filter: no order can ever retire the middle
  // ACL, so the cleanup step is the (provably minimal) blocker.
  UpdateOrderSynthesizer synth(rig.rc, rig.base);
  const OrderResult r =
      synth.synthesize({rig.cleanup_step(), rig.edge_step(/*broken=*/true)});

  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.blocking, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(r.blocking_minimal);
  // The remainder (just the broken-but-harmless edge step) is orderable.
  EXPECT_EQ(r.order, (std::vector<std::size_t>{1}));
}

TEST(Order, BaseVerifierIsNeverMutated) {
  Rig rig;
  const std::size_t ecs = rig.rc.ecs().ec_count();
  const std::size_t pairs = rig.rc.checker().pair_count();
  UpdateOrderSynthesizer synth(rig.rc, rig.base);
  synth.synthesize({rig.cleanup_step(), rig.edge_step()});
  EXPECT_EQ(rig.rc.ecs().ec_count(), ecs);
  EXPECT_EQ(rig.rc.checker().pair_count(), pairs);
}

TEST(Order, EmptyBatchIsTriviallyOrdered) {
  Rig rig;
  UpdateOrderSynthesizer synth(rig.rc, rig.base);
  const OrderResult r = synth.synthesize({});
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.order.empty());
  EXPECT_EQ(r.explored, 0u);
}

TEST(Order, PoliciesViolatedAtBaseAreNotWatched) {
  Rig rig;
  // Violated at base (n1-0 is reachable from n0-0): stays violated through
  // the rollout without blocking it.
  rig.rc.require_isolated("n0-0", "n1-0",
                          config::host_prefix(rig.topo.find_node("n1-0")));
  UpdateOrderSynthesizer synth(rig.rc, rig.base);
  const OrderResult r = synth.synthesize({rig.cleanup_step(), rig.edge_step()});
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.blocking.empty());
}

TEST(Order, OverlappingStepsAreRejected) {
  Rig rig;
  UpdateStep a = rig.cleanup_step();
  UpdateStep b = rig.edge_step();
  b.patch.devices["n1-0"] = rig.clean.devices.at("n1-0");  // also touches n1-0
  UpdateOrderSynthesizer synth(rig.rc, rig.base);
  try {
    synth.synthesize({a, b});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("n1-0"), std::string::npos);
  }
}

TEST(Order, UnknownDeviceAndEmptyPatchAreRejected) {
  Rig rig;
  UpdateStep ghost;
  ghost.name = "ghost";
  ghost.patch.devices["n9-9"] = rig.clean.devices.at("n1-0");
  UpdateOrderSynthesizer synth(rig.rc, rig.base);
  EXPECT_THROW(synth.synthesize({ghost}), std::invalid_argument);

  UpdateStep empty;
  empty.name = "empty";
  EXPECT_THROW(synth.synthesize({empty}), std::invalid_argument);
}

TEST(Order, MoreThan64StepsAreRejected) {
  Rig rig;
  std::vector<UpdateStep> steps(65);
  UpdateOrderSynthesizer synth(rig.rc, rig.base);
  // The width check fires before any per-step validation.
  EXPECT_THROW(synth.synthesize(steps), std::invalid_argument);
}

TEST(Order, ExplorationBudgetIsRespected) {
  Rig rig;
  UpdateOrderSynthesizer synth(rig.rc, rig.base);
  OrderOptions opts;
  opts.max_explored = 1;
  const OrderResult r = synth.synthesize({rig.cleanup_step(), rig.edge_step()}, opts);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.explored, 1u);
  // An exhausted budget proves nothing: no blocking subset is claimed.
  EXPECT_TRUE(r.blocking.empty());
  EXPECT_FALSE(r.blocking_minimal);
}

}  // namespace
}  // namespace rcfg::relate
