#include "relate/relate.h"

#include <gtest/gtest.h>

#include "config/builders.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

namespace rcfg::relate {
namespace {

/// Deny `dst` (then permit everything else) on every named ingress
/// interface of `device`.
void deny_dst_on(config::NetworkConfig& cfg, const std::string& device,
                 net::Ipv4Prefix dst, const std::vector<std::string>& ifaces) {
  auto& dev = cfg.devices.at(device);
  config::Acl acl;
  acl.name = "REL-DENY";
  config::AclRule deny;
  deny.seq = 10;
  deny.action = config::Action::kDeny;
  deny.dst = dst;
  acl.rules.push_back(deny);
  config::AclRule permit;
  permit.seq = 20;
  permit.action = config::Action::kPermit;
  acl.rules.push_back(permit);
  dev.acls[acl.name] = acl;
  for (const std::string& iface : ifaces) dev.find_interface(iface)->acl_in = acl.name;
}

TEST(Relate, IdenticalConfigProducesEmptyDiff) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  verify::RealConfig rc(t);
  rc.apply(cfg);
  const std::size_t base_ecs = rc.ecs().ec_count();
  const std::size_t base_pairs = rc.checker().pair_count();

  RelationalChecker checker(rc);
  const RelationalResult r = checker.check(cfg, {{RelationalSpec::Kind::kNone, {}, ""}});

  EXPECT_TRUE(r.holds);
  EXPECT_TRUE(r.diff.ecs.empty());
  EXPECT_TRUE(r.violations.empty());
  // The base verifier is never mutated by a relational check.
  EXPECT_EQ(rc.ecs().ec_count(), base_ecs);
  EXPECT_EQ(rc.checker().pair_count(), base_pairs);
}

TEST(Relate, AclChangeConfinedToItsPrefix) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig base = config::build_ospf_network(t);
  const net::Ipv4Prefix victim = config::host_prefix(t.find_node("r2"));
  verify::RealConfig rc(t);
  rc.apply(base);

  config::NetworkConfig proposed = base;
  deny_dst_on(proposed, "r2", victim, {"to-r1", "to-r3"});

  RelationalChecker checker(rc);
  const RelationalResult r =
      checker.check(proposed, {{RelationalSpec::Kind::kOnlyDstIn, {victim}, "quarantine"},
                               {RelationalSpec::Kind::kNone, {}, "frozen"}});

  // The ACL only affects traffic to r2's host prefix, so only_dst_in holds
  // while the behaviour-preserving spec is violated by exactly that diff.
  ASSERT_FALSE(r.diff.ecs.empty());
  EXPECT_FALSE(r.holds);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].spec, 1u);
  EXPECT_FALSE(r.violations[0].ecs.empty());

  // Every diffed EC lost delivered pairs (r2 became unreachable for the
  // victim prefix) and gained none. An ingress filter changes no forwarding
  // decision, so the diff shows dropped deliveries, not port divergences —
  // every lost pair's destination is r2.
  const topo::NodeId r2 = t.find_node("r2");
  for (const EcDiff& d : r.diff.ecs) {
    ASSERT_FALSE(d.pairs_lost.empty());
    EXPECT_TRUE(d.pairs_gained.empty());
    EXPECT_FALSE(d.loop_after);
    for (const auto& [src, dst] : d.pairs_lost) EXPECT_EQ(dst, r2);
  }

  // The witness flow targets the victim prefix and flips from delivered to
  // dropped across the change.
  ASSERT_TRUE(r.violations[0].witness.has_value());
  const RelationalWitness& w = *r.violations[0].witness;
  EXPECT_TRUE(victim.contains(w.flow.dst));
  EXPECT_TRUE(w.before.any_delivered());
  EXPECT_FALSE(w.after.any_delivered());
}

TEST(Relate, CostChangeViolatesDstSpec) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig base = config::build_ospf_network(t);
  verify::RealConfig rc(t);
  rc.apply(base);

  // Rerouting r0's clockwise traffic changes behaviour for prefixes far
  // outside r2's host prefix — the confinement spec must catch it.
  config::NetworkConfig proposed = base;
  config::set_ospf_cost(proposed, "r0", "to-r1", 10);

  RelationalChecker checker(rc);
  const net::Ipv4Prefix victim = config::host_prefix(t.find_node("r2"));
  const RelationalResult r =
      checker.check(proposed, {{RelationalSpec::Kind::kOnlyDstIn, {victim}, ""}});

  EXPECT_FALSE(r.holds);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].spec, 0u);
  ASSERT_TRUE(r.violations[0].witness.has_value());
  // The witness escaped the allowed set: its destination is NOT in P.
  EXPECT_FALSE(victim.contains(r.violations[0].witness->flow.dst));

  // A routing change (unlike a filter change) diverges forwarding
  // decisions: r0's next hop flips for the rerouted ECs.
  const topo::NodeId r0 = t.find_node("r0");
  bool r0_diverged = false;
  for (const EcDiff& d : r.diff.ecs)
    for (const DeviceDivergence& dd : d.devices) r0_diverged |= (dd.device == r0);
  EXPECT_TRUE(r0_diverged);
}

TEST(Relate, WitnessesCanBeDisabled) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig base = config::build_ospf_network(t);
  verify::RealConfig rc(t);
  rc.apply(base);

  config::NetworkConfig proposed = base;
  config::set_ospf_cost(proposed, "r0", "to-r1", 10);

  RelationalChecker checker(rc);
  const RelationalResult r =
      checker.check(proposed, {{RelationalSpec::Kind::kNone, {}, ""}}, false);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_FALSE(r.violations[0].witness.has_value());
}

TEST(Relate, IncrementalDiffMatchesBruteForce) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig base = config::build_ospf_network(t);
  verify::RealConfig rc(t);
  rc.apply(base);

  config::NetworkConfig proposed = base;
  deny_dst_on(proposed, "r2", config::host_prefix(t.find_node("r2")),
              {"to-r1", "to-r3"});
  config::set_ospf_cost(proposed, "r0", "to-r1", 10);

  RelationalChecker checker(rc);
  const RelationalResult r = checker.check(proposed);
  ASSERT_TRUE(checker.has_changed());

  // The brute force compares EVERY fork EC against its base ancestor; the
  // incremental diff looked only at the apply's affected set. Equality is
  // the proof that the unexamined ECs really are behaviourally identical.
  const RelationalDiff brute =
      relational_diff_bruteforce(rc, checker.changed(), checker.base_of());
  EXPECT_EQ(r.diff, brute);
  EXPECT_LE(r.ecs_compared, checker.changed().ecs().ec_count());
}

TEST(Relate, SpecKindRoundTrip) {
  for (const auto kind : {RelationalSpec::Kind::kNone, RelationalSpec::Kind::kOnlyDstIn,
                          RelationalSpec::Kind::kOnlySrcIn}) {
    EXPECT_EQ(spec_kind_of(to_string(kind)), kind);
  }
  EXPECT_THROW(spec_kind_of("only_via"), std::invalid_argument);
}

}  // namespace
}  // namespace rcfg::relate
