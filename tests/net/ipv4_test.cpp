#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace rcfg::net {
namespace {

TEST(Ipv4Addr, ParseRoundTrip) {
  const auto a = Ipv4Addr::parse("10.1.2.3");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "10.1.2.3");
  EXPECT_EQ(a->bits(), 0x0A010203u);
}

TEST(Ipv4Addr, ParseEdges) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->bits(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->bits(), 0xFFFFFFFFu);
}

TEST(Ipv4Addr, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4."));
  EXPECT_FALSE(Ipv4Addr::parse(".1.2.3.4"));
}

TEST(Ipv4Addr, ConstructorFromOctets) {
  constexpr Ipv4Addr a{192, 168, 1, 1};
  EXPECT_EQ(a.to_string(), "192.168.1.1");
}

TEST(Ipv4Prefix, ParseAndCanonicalize) {
  const auto p = Ipv4Prefix::parse("10.1.2.3/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.1.2.0/24");  // host bits masked
  EXPECT_EQ(p->length(), 24);
}

TEST(Ipv4Prefix, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/-1"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0/8"));
  EXPECT_FALSE(Ipv4Prefix::parse("/8"));
}

TEST(Ipv4Prefix, ContainsAddress) {
  const auto p = *Ipv4Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(p.contains(*Ipv4Addr::parse("10.1.255.255")));
  EXPECT_TRUE(p.contains(*Ipv4Addr::parse("10.1.0.0")));
  EXPECT_FALSE(p.contains(*Ipv4Addr::parse("10.2.0.0")));
}

TEST(Ipv4Prefix, ContainsPrefix) {
  const auto p16 = *Ipv4Prefix::parse("10.1.0.0/16");
  const auto p24 = *Ipv4Prefix::parse("10.1.5.0/24");
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_FALSE(p24.contains(p16));
  EXPECT_TRUE(p16.contains(p16));
  EXPECT_TRUE(kDefaultRoute.contains(p16));
}

TEST(Ipv4Prefix, Overlaps) {
  const auto a = *Ipv4Prefix::parse("10.0.0.0/8");
  const auto b = *Ipv4Prefix::parse("10.200.0.0/16");
  const auto c = *Ipv4Prefix::parse("11.0.0.0/8");
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Ipv4Prefix, ZeroLengthMask) {
  EXPECT_EQ(Ipv4Prefix::mask_for(0), 0u);
  EXPECT_EQ(Ipv4Prefix::mask_for(32), 0xFFFFFFFFu);
  EXPECT_EQ(Ipv4Prefix::mask_for(8), 0xFF000000u);
  EXPECT_TRUE(kDefaultRoute.contains(*Ipv4Addr::parse("1.2.3.4")));
}

TEST(Ipv4Prefix, FirstLast) {
  const auto p = *Ipv4Prefix::parse("10.1.2.0/24");
  EXPECT_EQ(p.first().to_string(), "10.1.2.0");
  EXPECT_EQ(p.last().to_string(), "10.1.2.255");
  const auto slash31 = *Ipv4Prefix::parse("172.16.0.2/31");
  EXPECT_EQ(slash31.first().to_string(), "172.16.0.2");
  EXPECT_EQ(slash31.last().to_string(), "172.16.0.3");
}

TEST(Ipv4Prefix, OrderingIsTotal) {
  const auto a = *Ipv4Prefix::parse("10.0.0.0/8");
  const auto b = *Ipv4Prefix::parse("10.0.0.0/16");
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
}

}  // namespace
}  // namespace rcfg::net
