#include "net/prefix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/rng.h"

namespace rcfg::net {
namespace {

Ipv4Prefix pfx(const char* s) { return *Ipv4Prefix::parse(s); }
Ipv4Addr addr(const char* s) { return *Ipv4Addr::parse(s); }

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> t;
  EXPECT_TRUE(t.insert(pfx("10.0.0.0/8"), 1));
  EXPECT_FALSE(t.insert(pfx("10.0.0.0/8"), 2));  // overwrite, not new
  ASSERT_NE(t.find(pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*t.find(pfx("10.0.0.0/8")), 2);
  EXPECT_EQ(t.find(pfx("10.0.0.0/16")), nullptr);
  EXPECT_TRUE(t.erase(pfx("10.0.0.0/8")));
  EXPECT_FALSE(t.erase(pfx("10.0.0.0/8")));
  EXPECT_TRUE(t.empty());
}

TEST(PrefixTrie, LongestPrefixMatch) {
  PrefixTrie<int> t;
  t.insert(pfx("0.0.0.0/0"), 0);
  t.insert(pfx("10.0.0.0/8"), 8);
  t.insert(pfx("10.1.0.0/16"), 16);
  t.insert(pfx("10.1.2.0/24"), 24);

  auto r = t.lookup(addr("10.1.2.3"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r->second, 24);
  EXPECT_EQ(r->first, pfx("10.1.2.0/24"));

  r = t.lookup(addr("10.1.9.9"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r->second, 16);

  r = t.lookup(addr("10.99.0.1"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r->second, 8);

  r = t.lookup(addr("192.168.0.1"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r->second, 0);
}

TEST(PrefixTrie, LookupWithNoDefaultRoute) {
  PrefixTrie<int> t;
  t.insert(pfx("10.0.0.0/8"), 1);
  EXPECT_FALSE(t.lookup(addr("11.0.0.1")).has_value());
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> t;
  t.insert(pfx("10.0.0.1/32"), 1);
  t.insert(pfx("10.0.0.0/24"), 2);
  EXPECT_EQ(*t.lookup(addr("10.0.0.1"))->second, 1);
  EXPECT_EQ(*t.lookup(addr("10.0.0.2"))->second, 2);
}

TEST(PrefixTrie, VisitDescendants) {
  PrefixTrie<int> t;
  t.insert(pfx("10.0.0.0/8"), 8);
  t.insert(pfx("10.1.0.0/16"), 16);
  t.insert(pfx("10.1.2.0/24"), 24);
  t.insert(pfx("11.0.0.0/8"), 0);

  std::vector<int> seen;
  t.visit_descendants(pfx("10.0.0.0/8"),
                      [&](Ipv4Prefix, const int& v) { seen.push_back(v); });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{16, 24}));
}

TEST(PrefixTrie, VisitAncestorsShortestFirst) {
  PrefixTrie<int> t;
  t.insert(pfx("0.0.0.0/0"), 0);
  t.insert(pfx("10.0.0.0/8"), 8);
  t.insert(pfx("10.1.2.0/24"), 24);

  std::vector<int> seen;
  t.visit_ancestors(pfx("10.1.2.0/24"),
                    [&](Ipv4Prefix, const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 8, 24}));
}

TEST(PrefixTrie, VisitAllCountsEverything) {
  PrefixTrie<int> t;
  t.insert(pfx("0.0.0.0/0"), 1);
  t.insert(pfx("10.0.0.0/8"), 2);
  t.insert(pfx("172.16.0.0/12"), 3);
  int count = 0;
  t.visit_all([&](Ipv4Prefix, const int&) { ++count; });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(t.size(), 3u);
}

/// Property test: trie LPM agrees with a brute-force linear scan over
/// random prefix tables and random probe addresses.
TEST(PrefixTrieProperty, MatchesLinearScan) {
  core::Rng rng{123};
  for (int trial = 0; trial < 20; ++trial) {
    PrefixTrie<int> t;
    std::map<Ipv4Prefix, int> table;
    for (int i = 0; i < 200; ++i) {
      const auto len = static_cast<std::uint8_t>(rng.next_in(0, 32));
      const Ipv4Prefix p{Ipv4Addr{static_cast<std::uint32_t>(rng.next())}, len};
      table[p] = i;
      t.insert(p, i);
    }
    // Randomly erase some.
    for (auto it = table.begin(); it != table.end();) {
      if (rng.next_bool(0.3)) {
        t.erase(it->first);
        it = table.erase(it);
      } else {
        ++it;
      }
    }
    EXPECT_EQ(t.size(), table.size());

    for (int probe = 0; probe < 200; ++probe) {
      const Ipv4Addr a{static_cast<std::uint32_t>(rng.next())};
      // Brute force: longest prefix containing a.
      const std::pair<const Ipv4Prefix, int>* best = nullptr;
      for (const auto& e : table) {
        if (e.first.contains(a) && (best == nullptr || e.first.length() > best->first.length())) {
          best = &e;
        }
      }
      const auto got = t.lookup(a);
      if (best == nullptr) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->first, best->first);
        EXPECT_EQ(*got->second, best->second);
      }
    }
  }
}

}  // namespace
}  // namespace rcfg::net
