#pragma once

// Shared fixtures for the service-layer tests: a converging BGP full mesh
// and its nonterminating BAD-GADGET variant (Griffin's dispute wheel, the
// same recipe as tests/routing/generator_test.cpp), plus session options
// that make the divergence detectors trip quickly.

#include "config/builders.h"
#include "service/session.h"
#include "topo/generators.h"

namespace rcfg::service::testutil {

/// m0 originates; m1..m3 prefer the wheel: no stable BGP solution.
inline config::NetworkConfig bad_gadget(const topo::Topology& full_mesh4) {
  config::NetworkConfig cfg = config::build_bgp_network(full_mesh4);
  for (unsigned i = 1; i <= 3; ++i) {
    cfg.devices.at("m" + std::to_string(i)).bgp->networks.clear();
  }
  config::set_local_pref(cfg, "m1", "to-m2", 200);
  config::set_local_pref(cfg, "m2", "to-m3", 200);
  config::set_local_pref(cfg, "m3", "to-m1", 200);
  return cfg;
}

/// Divergence detectors tuned down so the bad gadget fails in ~ms.
inline SessionOptions fast_divergence_options() {
  SessionOptions opts;
  opts.flush_budget = 2'000'000;
  opts.recurrence_threshold = 500;
  return opts;
}

}  // namespace rcfg::service::testutil
