#include "service/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rcfg::service {
namespace {

TEST(Metrics, CounterCountsAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 4000u);
}

TEST(Metrics, GaugeTracksLevelAndHighWater) {
  Gauge g;
  g.add(3);
  g.add(4);
  g.add(-5);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 7);
  g.add(10);
  EXPECT_EQ(g.max(), 12);
}

TEST(Metrics, HistogramBucketsAndSummary) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);    // bucket le=1
  h.record(1.0);    // le=1 (inclusive upper bound)
  h.record(7.0);    // le=10
  h.record(1000);   // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1008.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);

  const json::Value j = h.to_json();
  EXPECT_EQ(j.get_int("count"), 4);
  const auto& buckets = j.find("buckets")->as_array();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + inf
  EXPECT_EQ(buckets[0].get_int("count"), 2);
  EXPECT_EQ(buckets[1].get_int("count"), 1);
  EXPECT_EQ(buckets[2].get_int("count"), 0);
  EXPECT_EQ(buckets[3].get_string("le"), "inf");
  EXPECT_EQ(buckets[3].get_int("count"), 1);
}

TEST(Metrics, EmptyHistogramIsWellFormed) {
  const Histogram h = Histogram::latency_ms();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  const json::Value j = h.to_json();
  EXPECT_EQ(j.get_int("count"), 0);
  EXPECT_DOUBLE_EQ(j.find("mean")->as_double(), 0.0);
}

TEST(Metrics, ServiceMetricsJsonShape) {
  ServiceMetrics m;
  m.requests_total.inc(5);
  m.proposes.inc(3);
  m.coalesced_batches.inc();
  m.generate_ms.record(1.5);
  m.queue_depth.add(2);
  m.queue_depth.add(-2);

  const json::Value j = m.to_json();
  EXPECT_EQ(j.find("requests")->get_int("total"), 5);
  EXPECT_EQ(j.find("requests")->get_int("propose"), 3);
  EXPECT_EQ(j.find("batching")->get_int("coalesced_batches"), 1);
  EXPECT_EQ(j.find("latency")->find("generate_ms")->get_int("count"), 1);
  EXPECT_EQ(j.find("load")->get_int("queue_depth"), 0);
  EXPECT_EQ(j.find("load")->get_int("queue_depth_max"), 2);
  // The dump parses back (the stats verb ships exactly this).
  EXPECT_EQ(json::Value::parse(j.dump()), j);
}

}  // namespace
}  // namespace rcfg::service
