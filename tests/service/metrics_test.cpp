#include "service/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rcfg::service {
namespace {

TEST(Metrics, CounterCountsAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 4000u);
}

TEST(Metrics, GaugeTracksLevelAndHighWater) {
  Gauge g;
  g.add(3);
  g.add(4);
  g.add(-5);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 7);
  g.add(10);
  EXPECT_EQ(g.max(), 12);
}

TEST(Metrics, HistogramBucketsAndSummary) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);    // bucket le=1
  h.record(1.0);    // le=1 (inclusive upper bound)
  h.record(7.0);    // le=10
  h.record(1000);   // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1008.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);

  const json::Value j = h.to_json();
  EXPECT_EQ(j.get_int("count"), 4);
  const auto& buckets = j.find("buckets")->as_array();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + inf
  EXPECT_EQ(buckets[0].get_int("count"), 2);
  EXPECT_EQ(buckets[1].get_int("count"), 1);
  EXPECT_EQ(buckets[2].get_int("count"), 0);
  EXPECT_EQ(buckets[3].get_string("le"), "inf");
  EXPECT_EQ(buckets[3].get_int("count"), 1);
}

TEST(Metrics, EmptyHistogramIsWellFormed) {
  const Histogram h = Histogram::latency_ms();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  const json::Value j = h.to_json();
  EXPECT_EQ(j.get_int("count"), 0);
  EXPECT_DOUBLE_EQ(j.find("mean")->as_double(), 0.0);
}

TEST(Metrics, ServiceMetricsJsonShape) {
  ServiceMetrics m;
  m.requests_total.inc(5);
  m.proposes.inc(3);
  m.coalesced_batches.inc();
  m.generate_ms.record(1.5);
  m.queue_depth.add(2);
  m.queue_depth.add(-2);

  const json::Value j = m.to_json();
  EXPECT_EQ(j.find("requests")->get_int("total"), 5);
  EXPECT_EQ(j.find("requests")->get_int("propose"), 3);
  EXPECT_EQ(j.find("batching")->get_int("coalesced_batches"), 1);
  EXPECT_EQ(j.find("latency")->find("generate_ms")->get_int("count"), 1);
  EXPECT_EQ(j.find("load")->get_int("queue_depth"), 0);
  EXPECT_EQ(j.find("load")->get_int("queue_depth_max"), 2);
  // The dump parses back (the stats verb ships exactly this).
  EXPECT_EQ(json::Value::parse(j.dump()), j);
}

TEST(Metrics, FreshMetricsDumpHasNoNonFiniteTokens) {
  // Regression companion to the empty-histogram mean guard: a brand-new
  // ServiceMetrics has 14 empty histograms (count 0, min seeded at +inf);
  // without the guards their mean/min would dump as `nan`/`inf` and the
  // very first `stats` response of a fresh daemon would be invalid JSON.
  const ServiceMetrics m;
  const std::string text = m.to_json().dump();
  EXPECT_EQ(text.find("nan"), std::string::npos);
  // "inf" appears only as the quoted overflow-bucket label, never bare.
  std::size_t pos = 0;
  while ((pos = text.find("inf", pos)) != std::string::npos) {
    ASSERT_GT(pos, 0u);
    EXPECT_EQ(text[pos - 1], '"') << text.substr(pos - 10, 20);
    pos += 3;
  }
  EXPECT_NO_THROW(json::Value::parse(text));
}

TEST(Metrics, ReplicaAndLoadSectionsExported) {
  ServiceMetrics m;
  m.replica_queries.inc(4);
  m.replica_deltas.inc(2);
  m.replica_resyncs.inc();
  m.replica_squashes.inc(2);
  m.replicas_open.add(2);
  m.replica_catchup_ms.record(0.2);
  m.rejected_total.inc(3);

  const json::Value j = m.to_json();
  const json::Value* replicas = j.find("replicas");
  ASSERT_NE(replicas, nullptr);
  EXPECT_EQ(replicas->get_int("queries"), 4);
  EXPECT_EQ(replicas->get_int("deltas"), 2);
  EXPECT_EQ(replicas->get_int("resyncs"), 1);
  EXPECT_EQ(replicas->get_int("squashes"), 2);
  EXPECT_EQ(replicas->get_int("open"), 2);
  EXPECT_EQ(replicas->get_int("open_max"), 2);
  EXPECT_EQ(replicas->find("catchup_ms")->get_int("count"), 1);
  EXPECT_EQ(j.find("load")->get_int("rejected"), 3);
}

}  // namespace
}  // namespace rcfg::service
