#include "service/protocol.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "config/builders.h"
#include "config/print.h"
#include "service/engine.h"
#include "service_test_util.h"
#include "topo/generators.h"

namespace rcfg::service {
namespace {

TEST(Protocol, ParsesEveryVerb) {
  Request r = parse_request(
      R"({"id":1,"op":"open","session":"s","topology":{"kind":"fat_tree","k":4},)"
      R"("config":"hostname r0","max_rounds":9,"update_order":"delete_first","threads":4})");
  EXPECT_EQ(r.id, 1u);
  EXPECT_EQ(r.verb, Verb::kOpen);
  EXPECT_EQ(r.session, "s");
  EXPECT_EQ(r.topology.kind, "fat_tree");
  EXPECT_EQ(r.topology.k, 4u);
  EXPECT_EQ(r.config_text, "hostname r0");
  EXPECT_EQ(r.options.verifier.generator.max_rounds, 9u);
  EXPECT_EQ(r.options.verifier.update_order, dpm::UpdateOrder::kDeleteFirst);
  EXPECT_EQ(r.options.verifier.threads, 4u);

  // Omitted => the single-threaded default survives parsing.
  r = parse_request(
      R"({"id":1,"op":"open","session":"s","topology":{"kind":"ring","n":4},)"
      R"("config":"hostname r0"})");
  EXPECT_EQ(r.options.verifier.threads, 1u);

  r = parse_request(R"({"id":2,"op":"propose","session":"s","config":"hostname r0"})");
  EXPECT_EQ(r.verb, Verb::kPropose);

  r = parse_request(R"({"id":3,"op":"commit","session":"s"})");
  EXPECT_EQ(r.verb, Verb::kCommit);
  r = parse_request(R"({"id":4,"op":"abort","session":"s"})");
  EXPECT_EQ(r.verb, Verb::kAbort);

  r = parse_request(
      R"({"id":5,"op":"add_policy","session":"s","policy":{"kind":"waypoint",)"
      R"("name":"w","src":"a","dst":"b","via":"c","prefix":"10.0.0.0/24"}})");
  EXPECT_EQ(r.verb, Verb::kAddPolicy);
  EXPECT_EQ(r.policy.kind, PolicySpec::Kind::kWaypoint);
  EXPECT_EQ(r.policy.via, "c");
  EXPECT_EQ(r.policy.prefix.to_string(), "10.0.0.0/24");

  r = parse_request(R"({"id":6,"op":"query","session":"s","policy":"w"})");
  EXPECT_EQ(r.verb, Verb::kQuery);
  EXPECT_EQ(r.query_policy, "w");

  r = parse_request(R"({"id":7,"op":"stats"})");
  EXPECT_EQ(r.verb, Verb::kStats);
  EXPECT_TRUE(r.session.empty());

  r = parse_request(
      R"({"id":8,"op":"sweep","session":"s","links":[3,0,7],"max_failures":2,)"
      R"("threads":4,"detail":true})");
  EXPECT_EQ(r.verb, Verb::kSweep);
  EXPECT_EQ(r.sweep.links, (std::vector<topo::LinkId>{3, 0, 7}));
  EXPECT_EQ(r.sweep.max_failures, 2u);
  EXPECT_EQ(r.sweep.threads, 4u);
  EXPECT_TRUE(r.sweep.detail);

  // Everything optional: defaults are a full single-failure serial sweep.
  r = parse_request(R"({"id":9,"op":"sweep","session":"s"})");
  EXPECT_TRUE(r.sweep.links.empty());
  EXPECT_EQ(r.sweep.max_failures, 1u);
  EXPECT_EQ(r.sweep.budget, 0u);
  EXPECT_FALSE(r.sweep.prune);
  EXPECT_FALSE(r.sweep.symmetry);
  EXPECT_EQ(r.sweep.threads, 1u);
  EXPECT_FALSE(r.sweep.detail);

  // Deep-space knobs: k up to 6, explored-scenario budget, pruning and
  // symmetry dedup flags.
  r = parse_request(
      R"({"id":9,"op":"sweep","session":"s","max_failures":3,"budget":500,)"
      R"("prune":true,"symmetry":true})");
  EXPECT_EQ(r.sweep.max_failures, 3u);
  EXPECT_EQ(r.sweep.budget, 500u);
  EXPECT_TRUE(r.sweep.prune);
  EXPECT_TRUE(r.sweep.symmetry);
}

TEST(Protocol, RejectsBadSweepRequests) {
  EXPECT_THROW(
      parse_request(R"({"id":1,"op":"sweep","session":"s","max_failures":0})"),
      ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"id":2,"op":"sweep","session":"s","max_failures":7})"),
      ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"id":3,"op":"sweep","session":"s","links":[-1]})"),
      ProtocolError);
  // 2^32 must not truncate to link 0 and silently alias a valid id.
  EXPECT_THROW(
      parse_request(R"({"id":4,"op":"sweep","session":"s","links":[4294967296]})"),
      ProtocolError);
  // The largest representable id still parses (the engine range-checks it
  // against the topology).
  const Request r = parse_request(
      R"({"id":5,"op":"sweep","session":"s","links":[4294967295]})");
  EXPECT_EQ(r.sweep.links, (std::vector<topo::LinkId>{4294967295u}));
}

TEST(Protocol, ParsesRelateRequests) {
  Request r = parse_request(
      R"({"id":10,"op":"relate","session":"s","config":"hostname r0",)"
      R"("specs":[{"kind":"only_dst_in","prefixes":["10.0.2.0/24","10.0.3.0/24"],)"
      R"("name":"quarantine"},{"kind":"none"}],"witnesses":false,"detail":true})");
  EXPECT_EQ(r.verb, Verb::kRelate);
  EXPECT_EQ(verb_name(r.verb), "relate");
  EXPECT_EQ(r.config_text, "hostname r0");
  ASSERT_EQ(r.relate.specs.size(), 2u);
  EXPECT_EQ(r.relate.specs[0].kind, relate::RelationalSpec::Kind::kOnlyDstIn);
  ASSERT_EQ(r.relate.specs[0].prefixes.size(), 2u);
  EXPECT_EQ(r.relate.specs[0].prefixes[1].to_string(), "10.0.3.0/24");
  EXPECT_EQ(r.relate.specs[0].name, "quarantine");
  EXPECT_EQ(r.relate.specs[1].kind, relate::RelationalSpec::Kind::kNone);
  EXPECT_FALSE(r.relate.witnesses);
  EXPECT_TRUE(r.relate.detail);

  // Specs optional (a bare behavioural diff); witnesses default on.
  r = parse_request(R"({"id":11,"op":"relate","session":"s","config":"hostname r0"})");
  EXPECT_TRUE(r.relate.specs.empty());
  EXPECT_TRUE(r.relate.witnesses);
  EXPECT_FALSE(r.relate.detail);
}

TEST(Protocol, ParsesOrderRequests) {
  Request r = parse_request(
      R"({"id":12,"op":"order","session":"s","steps":[)"
      R"({"name":"edge","config":"hostname e0"},{"name":"core","config":"hostname c0"}],)"
      R"("max_blocking":3,"detail":true})");
  EXPECT_EQ(r.verb, Verb::kOrder);
  EXPECT_EQ(verb_name(r.verb), "order");
  ASSERT_EQ(r.order.steps.size(), 2u);
  EXPECT_EQ(r.order.steps[0].name, "edge");
  EXPECT_EQ(r.order.steps[1].config_text, "hostname c0");
  EXPECT_EQ(r.order.max_blocking, 3u);
  EXPECT_TRUE(r.order.detail);

  r = parse_request(
      R"({"id":13,"op":"order","session":"s","steps":[{"name":"a","config":"hostname a"}]})");
  EXPECT_EQ(r.order.max_blocking, 2u);
  EXPECT_FALSE(r.order.detail);
}

TEST(Protocol, RejectsMalformedRelateAndOrder) {
  // relate: missing config, bad spec kind, malformed prefixes, kind/prefix
  // mismatches.
  EXPECT_THROW(parse_request(R"({"op":"relate","session":"s"})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"op":"relate","session":"s","config":"x",)"
                             R"("specs":[{"kind":"only_via","prefixes":["10.0.0.0/8"]}]})"),
               ProtocolError);  // unknown spec kind
  EXPECT_THROW(parse_request(R"({"op":"relate","session":"s","config":"x",)"
                             R"("specs":[{"prefixes":["10.0.0.0/8"]}]})"),
               ProtocolError);  // no kind
  EXPECT_THROW(parse_request(R"({"op":"relate","session":"s","config":"x",)"
                             R"("specs":[{"kind":"only_dst_in","prefixes":["299.0.0.0/8"]}]})"),
               ProtocolError);  // malformed prefix
  EXPECT_THROW(parse_request(R"({"op":"relate","session":"s","config":"x",)"
                             R"("specs":[{"kind":"only_dst_in","prefixes":"10.0.0.0/8"}]})"),
               ProtocolError);  // prefixes must be an array
  EXPECT_THROW(parse_request(R"({"op":"relate","session":"s","config":"x",)"
                             R"("specs":[{"kind":"only_dst_in"}]})"),
               ProtocolError);  // only_dst_in needs prefixes
  EXPECT_THROW(parse_request(R"({"op":"relate","session":"s","config":"x",)"
                             R"("specs":[{"kind":"none","prefixes":["10.0.0.0/8"]}]})"),
               ProtocolError);  // none takes no prefixes

  // order: empty or malformed step batches.
  EXPECT_THROW(parse_request(R"({"op":"order","session":"s"})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"op":"order","session":"s","steps":[]})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"op":"order","session":"s","steps":["a"]})"),
               ProtocolError);  // step must be an object
  EXPECT_THROW(parse_request(R"({"op":"order","session":"s","steps":[{"config":"x"}]})"),
               ProtocolError);  // step without name
  EXPECT_THROW(parse_request(R"({"op":"order","session":"s","steps":[{"name":"a"}]})"),
               ProtocolError);  // step without config
  EXPECT_THROW(parse_request(R"({"op":"order","session":"s","steps":[)"
                             R"({"name":"a","config":"x"},{"name":"a","config":"y"}]})"),
               ProtocolError);  // duplicate step name
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request("not json"), ProtocolError);
  EXPECT_THROW(parse_request("[1,2]"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"op":"frobnicate","session":"s"})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"op":"propose"})"), ProtocolError);  // no session
  EXPECT_THROW(parse_request(R"({"op":"propose","session":"s"})"), ProtocolError);  // no config
  EXPECT_THROW(parse_request(R"({"op":"open","session":"s","config":"x"})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"op":"add_policy","session":"s"})"), ProtocolError);
  EXPECT_THROW(
      parse_request(
          R"({"op":"add_policy","session":"s","policy":{"kind":"waypoint","name":"w","src":"a","dst":"b"}})"),
      ProtocolError);  // waypoint without via
  EXPECT_THROW(
      parse_request(
          R"({"op":"add_policy","session":"s","policy":{"name":"p","src":"a","dst":"b","prefix":"299.0.0.0/8"}})"),
      ProtocolError);  // bad prefix
  EXPECT_THROW(parse_request(R"({"op":"sweep"})"), ProtocolError);  // no session
  EXPECT_THROW(parse_request(R"({"op":"sweep","session":"s","links":3})"),
               ProtocolError);  // links must be an array
  EXPECT_THROW(parse_request(R"({"op":"sweep","session":"s","links":[-1]})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"op":"sweep","session":"s","max_failures":9})"),
               ProtocolError);  // deep spaces cap at kMaxSweepFailures
}

TEST(Protocol, BuildTopologyKinds) {
  TopologySpec spec;
  spec.kind = "ring";
  spec.k = 5;
  EXPECT_EQ(build_topology(spec).node_count(), 5u);
  spec.kind = "full_mesh";
  spec.k = 4;
  EXPECT_EQ(build_topology(spec).node_count(), 4u);
  spec.kind = "fat_tree";
  spec.k = 4;
  EXPECT_EQ(build_topology(spec).node_count(), 20u);
  spec.kind = "grid";
  spec.w = 3;
  spec.h = 2;
  EXPECT_EQ(build_topology(spec).node_count(), 6u);
  spec.kind = "mobius";
  EXPECT_THROW(build_topology(spec), ProtocolError);
  spec.kind = "fat_tree";
  spec.k = 3;  // odd
  EXPECT_THROW(build_topology(spec), ProtocolError);
}

TEST(Protocol, SerializeResponse) {
  Response r;
  r.id = 12;
  r.body["status"] = json::Value("staged");
  EXPECT_EQ(serialize_response(r), R"({"id":12,"ok":true,"status":"staged"})");
  EXPECT_EQ(serialize_response(error_response(3, "boom")),
            R"({"error":"boom","id":3,"ok":false})");
}

// ---------------------------------------------------------------------------
// The acceptance transcript: open -> add_policy -> propose -> (coalesced)
// propose -> commit -> propose(nonterminating) -> automatic recovery ->
// query -> stats, driven through the same JSON-lines loop rcfgd runs.
// ---------------------------------------------------------------------------

std::string request_line(json::Value::Object fields) {
  return json::Value(std::move(fields)).dump();
}

TEST(Protocol, RcfgdTranscriptEndToEnd) {
  const topo::Topology t = topo::make_full_mesh(4);
  const config::NetworkConfig good = config::build_bgp_network(t);
  config::NetworkConfig c1 = good;
  config::fail_link(c1, t, 0);
  config::NetworkConfig c2 = c1;
  config::fail_link(c2, t, 3);

  json::Value topology;
  topology["kind"] = json::Value("full_mesh");
  topology["n"] = json::Value(4);
  json::Value policy;
  policy["kind"] = json::Value("reachable");
  policy["name"] = json::Value("m0-m1");
  policy["src"] = json::Value("m0");
  policy["dst"] = json::Value("m1");
  policy["prefix"] = json::Value(config::host_prefix(t.find_node("m1")).to_string());

  std::ostringstream script;
  script << "# rcfgd acceptance transcript\n";
  script << "#pause\n";  // force one deterministic batch
  script << request_line({{"id", json::Value(1)},
                          {"op", json::Value("open")},
                          {"session", json::Value("net1")},
                          {"topology", topology},
                          {"config", json::Value(config::print_network(good))},
                          {"flush_budget", json::Value(2'000'000)},
                          {"recurrence_threshold", json::Value(500)}})
         << "\n";
  script << request_line({{"id", json::Value(2)},
                          {"op", json::Value("add_policy")},
                          {"session", json::Value("net1")},
                          {"policy", policy}})
         << "\n";
  script << request_line({{"id", json::Value(3)},
                          {"op", json::Value("propose")},
                          {"session", json::Value("net1")},
                          {"config", json::Value(config::print_network(c1))}})
         << "\n";
  script << request_line({{"id", json::Value(4)},
                          {"op", json::Value("propose")},
                          {"session", json::Value("net1")},
                          {"config", json::Value(config::print_network(c2))}})
         << "\n";
  script << request_line({{"id", json::Value(5)},
                          {"op", json::Value("commit")},
                          {"session", json::Value("net1")}})
         << "\n";
  script << request_line(
                {{"id", json::Value(6)},
                 {"op", json::Value("propose")},
                 {"session", json::Value("net1")},
                 {"config", json::Value(config::print_network(testutil::bad_gadget(t)))}})
         << "\n";
  script << request_line({{"id", json::Value(7)},
                          {"op", json::Value("query")},
                          {"session", json::Value("net1")}})
         << "\n";
  script << "#resume\n";
  script << request_line({{"id", json::Value(8)}, {"op", json::Value("stats")}}) << "\n";

  std::istringstream in(script.str());
  std::ostringstream out;
  EngineOptions opts;
  opts.workers = 2;
  run_jsonl(in, out, opts);

  // One response line per request, keyed by id.
  std::map<std::int64_t, json::Value> by_id;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    const json::Value v = json::Value::parse(line);
    by_id[v.get_int("id")] = v;
  }
  ASSERT_EQ(by_id.size(), 8u) << out.str();
  for (const auto& [id, v] : by_id) {
    EXPECT_TRUE(v.get_bool("ok")) << "id " << id << ": " << v.dump();
  }

  EXPECT_EQ(by_id[1].get_string("status"), "open");
  EXPECT_EQ(by_id[1].get_int("nodes"), 4);
  EXPECT_GT(by_id[1].get_int("rules"), 0);

  EXPECT_EQ(by_id[2].get_string("status"), "policy_added");
  EXPECT_TRUE(by_id[2].get_bool("satisfied"));

  // propose #3 was coalesced into #4 inside the paused batch.
  EXPECT_EQ(by_id[3].get_string("status"), "coalesced");
  EXPECT_EQ(by_id[3].get_int("superseded_by"), 4);
  EXPECT_EQ(by_id[4].get_string("status"), "staged");
  EXPECT_GT(by_id[4].get_int("fib_changes"), 0);
  EXPECT_EQ(by_id[5].get_string("status"), "committed");

  // The nonterminating proposal triggered automatic recovery.
  EXPECT_EQ(by_id[6].get_string("status"), "nonconvergent");
  EXPECT_TRUE(by_id[6].get_bool("recovered"));
  EXPECT_EQ(by_id[6].get_int("rebuilds"), 1);

  // The query observes the recovered, committed state (policy intact).
  EXPECT_EQ(by_id[7].get_int("rebuilds"), 1);
  EXPECT_EQ(by_id[7].get_int("generation"), 2);
  EXPECT_FALSE(by_id[7].get_bool("staged"));
  const auto& policies = by_id[7].find("policies")->as_array();
  ASSERT_EQ(policies.size(), 1u);
  EXPECT_EQ(policies[0].get_string("name"), "m0-m1");
  EXPECT_TRUE(policies[0].get_bool("satisfied"));

  // Stats: >= 1 coalesced batch, per-stage latency histograms populated,
  // and the recovery counted.
  const json::Value& stats = by_id[8];
  const json::Value* metrics = stats.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GE(metrics->find("batching")->get_int("coalesced_batches"), 1);
  EXPECT_GE(metrics->find("batching")->get_int("coalesced_proposes"), 1);
  EXPECT_EQ(metrics->find("recoveries")->as_int(), 1);
  for (const char* stage : {"generate_ms", "model_ms", "check_ms", "total_ms"}) {
    const json::Value* h = metrics->find("latency")->find(stage);
    ASSERT_NE(h, nullptr) << stage;
    EXPECT_GE(h->get_int("count"), 2) << stage;  // open + surviving propose
    EXPECT_FALSE(h->find("buckets")->as_array().empty()) << stage;
  }
  ASSERT_EQ(stats.find("sessions")->as_array().size(), 1u);
  EXPECT_EQ(stats.find("sessions")->as_array()[0].get_string("name"), "net1");

  // Batched-vs-sequential equivalence on the surviving state: the session
  // saw (good, then c2-with-c1-coalesced, then recovery back to c2).
  verify::RealConfig oracle(t);
  oracle.apply(good);
  oracle.apply(c1);
  oracle.apply(c2);
  EXPECT_EQ(by_id[7].get_int("pairs"),
            static_cast<std::int64_t>(oracle.checker().pair_count()));
}

}  // namespace
}  // namespace rcfg::service
