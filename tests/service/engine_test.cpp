#include "service/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "config/builders.h"
#include "config/print.h"
#include "service_test_util.h"
#include "topo/generators.h"

namespace rcfg::service {
namespace {

Request open_request(std::uint64_t id, const std::string& session, const std::string& kind,
                     unsigned k, const config::NetworkConfig& cfg) {
  Request req;
  req.id = id;
  req.verb = Verb::kOpen;
  req.session = session;
  req.topology.kind = kind;
  req.topology.k = k;
  req.config_text = config::print_network(cfg);
  return req;
}

Request propose_request(std::uint64_t id, const std::string& session,
                        const config::NetworkConfig& cfg) {
  Request req;
  req.id = id;
  req.verb = Verb::kPropose;
  req.session = session;
  req.config_text = config::print_network(cfg);
  return req;
}

Request verb_request(std::uint64_t id, const std::string& session, Verb verb) {
  Request req;
  req.id = id;
  req.verb = verb;
  req.session = session;
  return req;
}

TEST(Engine, CoalescedBatchMatchesSequentialApplies) {
  const topo::Topology t = topo::make_ring(6);
  const config::NetworkConfig cfg = config::build_ospf_network(t);

  // Three successive change proposals: c1, c2, c3 (cumulative link failures).
  config::NetworkConfig c1 = cfg;
  config::fail_link(c1, t, 0);
  config::NetworkConfig c2 = c1;
  config::fail_link(c2, t, 2);
  config::NetworkConfig c3 = c2;
  config::restore_link(c3, t, 0);

  EngineOptions opts;
  opts.workers = 2;
  Engine engine(opts);

  // pause() keeps everything in one queue => one batch, deterministically.
  engine.pause();
  std::vector<Response> responses(5);
  std::atomic<int> done{0};
  const auto record = [&responses, &done](std::size_t i) {
    return [&responses, &done, i](Response r) {
      responses[i] = std::move(r);
      ++done;
    };
  };
  engine.submit(open_request(1, "net", "ring", 6, cfg), record(0));
  engine.submit(propose_request(2, "net", c1), record(1));
  engine.submit(propose_request(3, "net", c2), record(2));
  engine.submit(propose_request(4, "net", c3), record(3));
  engine.submit(verb_request(5, "net", Verb::kCommit), record(4));
  engine.resume();
  engine.drain();
  ASSERT_EQ(done.load(), 5);

  // The run c1,c2 was coalesced into c3; every request got an answer.
  EXPECT_TRUE(responses[0].ok);
  EXPECT_EQ(responses[1].body.get_string("status"), "coalesced");
  EXPECT_EQ(responses[1].body.get_int("superseded_by"), 4);
  EXPECT_EQ(responses[2].body.get_string("status"), "coalesced");
  EXPECT_EQ(responses[3].body.get_string("status"), "staged");
  EXPECT_EQ(responses[4].body.get_string("status"), "committed");
  EXPECT_EQ(engine.metrics().coalesced_proposes.value(), 2u);
  EXPECT_EQ(engine.metrics().coalesced_batches.value(), 1u);
  EXPECT_GE(engine.metrics().batch_size.max(), 5.0);

  // Batching correctness: the coalesced final state equals applying the
  // whole change sequence one by one on a plain RealConfig.
  verify::RealConfig oracle(t);
  oracle.apply(cfg);
  oracle.apply(c1);
  oracle.apply(c2);
  oracle.apply(c3);

  const Response q = engine.call(verb_request(9, "net", Verb::kQuery));
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(q.body.get_int("pairs"),
            static_cast<std::int64_t>(oracle.checker().pair_count()));
  EXPECT_EQ(q.body.get_int("loops"),
            static_cast<std::int64_t>(oracle.checker().loop_count()));
  EXPECT_EQ(q.body.get_int("blackholes"),
            static_cast<std::int64_t>(oracle.checker().blackhole_count()));
}

TEST(Engine, NoCoalesceProcessesEveryPropose) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  config::NetworkConfig c1 = cfg;
  config::fail_link(c1, t, 0);
  config::NetworkConfig c2 = cfg;
  config::fail_link(c2, t, 1);

  EngineOptions opts;
  opts.coalesce = false;
  Engine engine(opts);
  engine.pause();
  std::vector<Response> responses(3);
  engine.submit(open_request(1, "net", "ring", 4, cfg), [&](Response r) { responses[0] = r; });
  engine.submit(propose_request(2, "net", c1), [&](Response r) { responses[1] = r; });
  engine.submit(propose_request(3, "net", c2), [&](Response r) { responses[2] = r; });
  engine.resume();
  engine.drain();

  EXPECT_EQ(responses[1].body.get_string("status"), "staged");
  EXPECT_EQ(responses[2].body.get_string("status"), "staged");
  EXPECT_EQ(engine.metrics().coalesced_proposes.value(), 0u);
}

TEST(Engine, RoutingErrors) {
  Engine engine;
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);

  // Unknown session.
  Response r = engine.call(verb_request(1, "ghost", Verb::kCommit));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown session"), std::string::npos);

  // Duplicate open.
  ASSERT_TRUE(engine.call(open_request(2, "net", "ring", 4, cfg)).ok);
  r = engine.call(open_request(3, "net", "ring", 4, cfg));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("already open"), std::string::npos);

  // Commit with nothing staged: the session's logic_error becomes an error
  // response, not a dead worker.
  r = engine.call(verb_request(4, "net", Verb::kCommit));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no staged proposal"), std::string::npos);

  // Malformed config DSL.
  Request bad;
  bad.id = 5;
  bad.verb = Verb::kPropose;
  bad.session = "net";
  bad.config_text = "hostname r0\nthis is not a stanza\n";
  r = engine.call(std::move(bad));
  EXPECT_FALSE(r.ok);

  // A failed open leaves no session behind: the name is reusable.
  Request bad_open = open_request(6, "net2", "ring", 4, cfg);
  bad_open.config_text = "not a config";
  EXPECT_FALSE(engine.call(std::move(bad_open)).ok);
  EXPECT_EQ(engine.session_count(), 1u);
  EXPECT_TRUE(engine.call(open_request(7, "net2", "ring", 4, cfg)).ok);
  EXPECT_EQ(engine.session_count(), 2u);

  EXPECT_GE(engine.metrics().errors_total.value(), 4u);
}

TEST(Engine, NonterminatingProposeRecoversViaSession) {
  const topo::Topology t = topo::make_full_mesh(4);
  const config::NetworkConfig good = config::build_bgp_network(t);

  Engine engine;
  Request open = open_request(1, "net", "full_mesh", 4, good);
  open.options = testutil::fast_divergence_options();
  ASSERT_TRUE(engine.call(std::move(open)).ok);

  const Response r =
      engine.call(propose_request(2, "net", testutil::bad_gadget(t)));
  ASSERT_TRUE(r.ok);  // handled: the verdict is "does not converge"
  EXPECT_EQ(r.body.get_string("status"), "nonconvergent");
  EXPECT_TRUE(r.body.get_bool("recovered"));
  EXPECT_EQ(r.body.get_int("rebuilds"), 1);
  EXPECT_EQ(engine.metrics().recoveries.value(), 1u);

  // The session still works.
  config::NetworkConfig after = good;
  config::fail_link(after, t, 1);
  EXPECT_EQ(engine.call(propose_request(3, "net", after)).body.get_string("status"),
            "staged");
  EXPECT_TRUE(engine.call(verb_request(4, "net", Verb::kAbort)).ok);
}

TEST(Engine, BackpressureBoundsQueueDepth) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  config::NetworkConfig changed = cfg;
  config::fail_link(changed, t, 0);

  EngineOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  Engine engine(opts);
  ASSERT_TRUE(engine.call(open_request(1, "net", "ring", 4, cfg)).ok);

  std::atomic<int> done{0};
  const auto count = [&done](Response r) {
    EXPECT_TRUE(r.ok);
    ++done;
  };
  // Two submitter threads hammer one session; submit() must block rather
  // than grow the queue beyond capacity.
  std::vector<std::thread> submitters;
  for (int s = 0; s < 2; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < 10; ++i) {
        const bool fail = (i % 2 == 0) != (s == 0);
        engine.submit(propose_request(100 + 10 * s + i, "net", fail ? changed : cfg), count);
      }
    });
  }
  for (std::thread& th : submitters) th.join();
  engine.drain();
  EXPECT_EQ(done.load(), 20);
  EXPECT_LE(engine.metrics().queue_depth.max(),
            static_cast<std::int64_t>(opts.queue_capacity));
  EXPECT_EQ(engine.metrics().queue_depth.value(), 0);
}

TEST(Engine, ConcurrentSessionsVerifyIndependently) {
  constexpr int kSessions = 4;
  constexpr int kChangesPerSession = 6;

  const topo::Topology t = topo::make_ring(5);
  const config::NetworkConfig base = config::build_ospf_network(t);

  // Per-session change sequences over distinct links.
  std::vector<std::vector<config::NetworkConfig>> sequences(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    config::NetworkConfig current = base;
    for (int i = 0; i < kChangesPerSession; ++i) {
      const topo::LinkId link = static_cast<topo::LinkId>((s + i) % t.link_count());
      if (i % 2 == 0) {
        config::fail_link(current, t, link);
      } else {
        config::restore_link(current, t, link);
      }
      sequences[s].push_back(current);
    }
  }

  EngineOptions opts;
  opts.workers = 4;
  Engine engine(opts);
  std::atomic<int> done{0};
  std::atomic<int> failed{0};
  const auto count = [&done, &failed](Response r) {
    if (!r.ok) ++failed;
    ++done;
  };

  for (int s = 0; s < kSessions; ++s) {
    engine.submit(open_request(1000 + s, "net" + std::to_string(s), "ring", 5, base), count);
  }
  // Interleave proposes (and periodic commits) across sessions from
  // multiple threads, so distinct sessions are in flight concurrently.
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSessions; ++s) {
    submitters.emplace_back([&, s] {
      const std::string name = "net" + std::to_string(s);
      for (int i = 0; i < kChangesPerSession; ++i) {
        engine.submit(propose_request(10 * s + i, name, sequences[s][i]), count);
        if (i % 3 == 2) engine.submit(verb_request(500 + 10 * s + i, name, Verb::kCommit), count);
      }
    });
  }
  for (std::thread& th : submitters) th.join();
  engine.drain();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(engine.session_count(), static_cast<std::size_t>(kSessions));

  // Every session's live state must equal a sequential oracle that applied
  // its full change sequence (coalescing only skips intermediate states).
  for (int s = 0; s < kSessions; ++s) {
    verify::RealConfig oracle(t);
    oracle.apply(base);
    for (const auto& cfg : sequences[s]) oracle.apply(cfg);
    const Response q = engine.call(verb_request(9000 + s, "net" + std::to_string(s), Verb::kQuery));
    ASSERT_TRUE(q.ok);
    EXPECT_EQ(q.body.get_int("pairs"),
              static_cast<std::int64_t>(oracle.checker().pair_count()))
        << "session " << s;
  }
}

TEST(Engine, StatsWaitsForInFlightWork) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  Engine engine;
  std::atomic<int> done{0};
  engine.submit(open_request(1, "a", "ring", 4, cfg), [&](Response) { ++done; });
  engine.submit(open_request(2, "b", "ring", 4, cfg), [&](Response) { ++done; });

  Request stats;
  stats.id = 3;
  stats.verb = Verb::kStats;
  const Response r = engine.call(std::move(stats));
  ASSERT_TRUE(r.ok);
  // By the time stats answers, both opens have been fully processed.
  EXPECT_EQ(done.load(), 2);
  EXPECT_EQ(r.body.find("sessions")->as_array().size(), 2u);
  EXPECT_EQ(r.body.find("metrics")->find("requests")->get_int("open"), 2);
  EXPECT_EQ(r.body.find("metrics")->find("load")->get_int("sessions_open"), 2);
}

TEST(Engine, SweepVerbMinesCriticalLinksAndViolations) {
  // A 3-node chain: both links are critical, and each breaks the policy.
  const topo::Topology t = topo::make_grid(3, 1);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  Engine engine;

  Request open;
  open.id = 1;
  open.verb = Verb::kOpen;
  open.session = "net";
  open.topology.kind = "grid";
  open.topology.w = 3;
  open.topology.h = 1;
  open.config_text = config::print_network(cfg);
  ASSERT_TRUE(engine.call(std::move(open)).ok);

  Request policy = verb_request(2, "net", Verb::kAddPolicy);
  policy.policy.name = "p";
  policy.policy.src = "n0-0";
  policy.policy.dst = "n2-0";
  policy.policy.prefix = config::host_prefix(t.find_node("n2-0"));
  ASSERT_TRUE(engine.call(std::move(policy)).ok);

  Request sweep = verb_request(3, "net", Verb::kSweep);
  sweep.sweep.threads = 2;
  sweep.sweep.detail = true;
  const Response r = engine.call(std::move(sweep));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.body.get_int("scenarios"), 2);
  ASSERT_NE(r.body.find("critical_links"), nullptr);
  EXPECT_EQ(r.body.find("critical_links")->as_array().size(), 2u);
  EXPECT_TRUE(r.body.find("diverged_links")->as_array().empty());
  const json::Value* violated = r.body.find("policy_violations")->find("p");
  ASSERT_NE(violated, nullptr);
  EXPECT_EQ(violated->as_array().size(), 2u);
  ASSERT_NE(r.body.find("outcomes"), nullptr);
  const auto& outcomes = r.body.find("outcomes")->as_array();
  ASSERT_EQ(outcomes.size(), 2u);
  for (const json::Value& o : outcomes) {
    EXPECT_FALSE(o.get_bool("diverged"));
    EXPECT_GT(o.get_int("pairs_lost"), 0);
  }

  // A link subset narrows the sweep; without detail there is no outcome
  // array. Out-of-range links are rejected.
  Request subset = verb_request(4, "net", Verb::kSweep);
  subset.sweep.links = {0};
  const Response rs = engine.call(std::move(subset));
  ASSERT_TRUE(rs.ok);
  EXPECT_EQ(rs.body.get_int("scenarios"), 1);
  EXPECT_EQ(rs.body.find("outcomes"), nullptr);

  Request bad = verb_request(5, "net", Verb::kSweep);
  bad.sweep.links = {99};
  EXPECT_FALSE(engine.call(std::move(bad)).ok);

  EXPECT_EQ(engine.metrics().sweeps.value(), 3u);
  EXPECT_EQ(engine.metrics().sweep_scenarios.value(), 3u);
  EXPECT_EQ(engine.metrics().sweep_diverged.value(), 0u);
}

TEST(Engine, SweepVerbNormalizesLinkSubsets) {
  // A duplicated, unsorted subset must collapse to the sorted-unique
  // universe before scenario generation: {1,0,1,0} is exactly {0,1}.
  // The unnormalized list used to leak duplicate scenarios (and {l,l}
  // "pairs") straight into the report.
  const topo::Topology t = topo::make_grid(3, 1);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  Engine engine;
  Request open = open_request(1, "net", "grid", 0, cfg);
  open.topology.w = 3;
  open.topology.h = 1;
  ASSERT_TRUE(engine.call(std::move(open)).ok);

  Request sweep = verb_request(2, "net", Verb::kSweep);
  sweep.sweep.links = {1, 0, 1, 0};
  sweep.sweep.max_failures = 2;
  sweep.sweep.detail = true;
  const Response r = engine.call(std::move(sweep));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.body.get_int("scenarios"), 3);  // {0}, {1}, {0,1}
  const auto& outcomes = r.body.find("outcomes")->as_array();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].find("links")->as_array().size(), 1u);
  EXPECT_EQ(outcomes[1].find("links")->as_array().size(), 1u);
  EXPECT_EQ(outcomes[2].find("links")->as_array().size(), 2u);
}

TEST(Engine, SweepVerbDeepSpaceWithPruneAndBudget) {
  // Full mesh with one policy pinned to link 0: the k<=3 space holds 41
  // scenarios of which only the 16 touching link 0 are policy-relevant.
  const topo::Topology t = topo::make_full_mesh(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  Engine engine;
  ASSERT_TRUE(engine.call(open_request(1, "net", "full_mesh", 4, cfg)).ok);

  Request policy = verb_request(2, "net", Verb::kAddPolicy);
  policy.policy.name = "p";
  policy.policy.src = "m0";
  policy.policy.dst = "m1";
  policy.policy.prefix = config::host_prefix(t.find_node("m1"));
  ASSERT_TRUE(engine.call(std::move(policy)).ok);

  Request sweep = verb_request(3, "net", Verb::kSweep);
  sweep.sweep.max_failures = 3;
  sweep.sweep.prune = true;
  sweep.sweep.threads = 2;
  const Response r = engine.call(std::move(sweep));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.body.get_int("total_scenarios"), 41);
  EXPECT_EQ(r.body.get_int("explored_scenarios"), 16);
  EXPECT_EQ(r.body.get_int("pruned_scenarios"), 25);
  EXPECT_EQ(r.body.find("coverage")->as_double(), 1.0);
  EXPECT_EQ(engine.metrics().sweep_pruned.value(), 25u);

  // A budget caps exploration and the shortfall shows up in coverage.
  Request budgeted = verb_request(4, "net", Verb::kSweep);
  budgeted.sweep.max_failures = 3;
  budgeted.sweep.prune = true;
  budgeted.sweep.budget = 5;
  const Response rb = engine.call(std::move(budgeted));
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_EQ(rb.body.get_int("explored_scenarios"), 5);
  EXPECT_LT(rb.body.find("coverage")->as_double(), 1.0);
}

TEST(Engine, SweepVerbSymmetryReplaysFatTreePods) {
  const topo::Topology t = topo::make_fat_tree(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  Engine engine;
  ASSERT_TRUE(engine.call(open_request(1, "net", "fat_tree", 4, cfg)).ok);

  Request policy = verb_request(2, "net", Verb::kAddPolicy);
  policy.policy.name = "p";
  policy.policy.src = "edge0-0";
  policy.policy.dst = "edge1-0";
  policy.policy.prefix = config::host_prefix(t.find_node("edge1-0"));
  ASSERT_TRUE(engine.call(std::move(policy)).ok);

  // Pods 2 and 3 are interchangeable (the policy pins 0 and 1): 8 of the
  // 32 single-link scenarios are replayed from their orbit representative.
  Request sweep = verb_request(3, "net", Verb::kSweep);
  sweep.sweep.symmetry = true;
  sweep.sweep.threads = 2;
  sweep.sweep.detail = true;
  const Response r = engine.call(std::move(sweep));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.body.get_int("scenarios"), 32);
  EXPECT_EQ(r.body.get_int("explored_scenarios"), 24);
  EXPECT_EQ(r.body.get_int("replayed_scenarios"), 8);
  EXPECT_EQ(r.body.find("coverage")->as_double(), 1.0);
  EXPECT_EQ(engine.metrics().sweep_replayed.value(), 8u);

  // Replayed coverage is visible per-outcome through the orbit counts.
  std::int64_t covered = 0;
  for (const json::Value& o : r.body.find("outcomes")->as_array()) {
    covered += o.get_int("orbit", 1);
  }
  EXPECT_EQ(covered, 32);
}

TEST(Engine, SweepVerbSurvivesDivergentScenarios) {
  // The stabilized bad gadget: healthy converges because m1 strongly
  // prefers its direct route from m0; failing link m0-m1 re-exposes the
  // dispute wheel. The sweep must report that scenario as diverged and
  // leave the session fully usable.
  const topo::Topology t = topo::make_full_mesh(4);
  config::NetworkConfig cfg = testutil::bad_gadget(t);
  config::set_local_pref(cfg, "m1", "to-m0", 300);

  Engine engine;
  Request open = open_request(1, "net", "full_mesh", 4, cfg);
  open.options = testutil::fast_divergence_options();
  ASSERT_TRUE(engine.call(std::move(open)).ok);

  Request sweep = verb_request(2, "net", Verb::kSweep);
  sweep.sweep.threads = 2;
  const Response r = engine.call(std::move(sweep));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.body.get_int("scenarios"), static_cast<std::int64_t>(t.link_count()));
  EXPECT_EQ(r.body.find("diverged_links")->as_array().size(), 1u);
  EXPECT_EQ(engine.metrics().sweep_diverged.value(), 1u);

  // k >= 2 oscillations have no single-link slot in diverged_links; they
  // must still surface through diverged_scenarios even without detail.
  // Give m1 a second escape hatch through m4 (outside the dispute wheel):
  // every single failure converges, but cutting any two of
  // {m0-m1, m0-m4, m1-m4} strands m1 on the wheel and oscillates.
  const topo::Topology t5 = topo::make_full_mesh(5);
  config::NetworkConfig c5 = config::build_bgp_network(t5);
  for (unsigned i = 1; i <= 3; ++i) {
    c5.devices.at("m" + std::to_string(i)).bgp->networks.clear();
  }
  config::set_local_pref(c5, "m1", "to-m2", 200);
  config::set_local_pref(c5, "m2", "to-m3", 200);
  config::set_local_pref(c5, "m3", "to-m1", 200);
  config::set_local_pref(c5, "m1", "to-m0", 300);
  config::set_local_pref(c5, "m1", "to-m4", 250);
  Request open5 = open_request(3, "net5", "full_mesh", 5, c5);
  open5.options = testutil::fast_divergence_options();
  ASSERT_TRUE(engine.call(std::move(open5)).ok);

  Request pairs = verb_request(4, "net5", Verb::kSweep);
  pairs.sweep.max_failures = 2;
  pairs.sweep.threads = 2;
  const Response rp = engine.call(std::move(pairs));
  ASSERT_TRUE(rp.ok) << rp.error;
  EXPECT_EQ(rp.body.find("outcomes"), nullptr);  // detail:false
  EXPECT_TRUE(rp.body.find("diverged_links")->as_array().empty());
  const auto& diverged = rp.body.find("diverged_scenarios")->as_array();
  ASSERT_EQ(diverged.size(), 3u);
  for (const json::Value& s : diverged) EXPECT_EQ(s.as_array().size(), 2u);
  EXPECT_EQ(diverged[0].as_array()[0].as_int(), 0);  // {m0-m1, m0-m4}
  EXPECT_EQ(diverged[0].as_array()[1].as_int(), 3);

  // The sweep ran on forked replicas: the live verifier is untouched and
  // the session keeps serving.
  const Response q = engine.call(verb_request(5, "net", Verb::kQuery));
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(q.body.get_int("rebuilds"), 0);
}

}  // namespace
}  // namespace rcfg::service
