// Migration regression: a session opened on the interval backend, driven
// through prefix-only commits, then hit with an ACL proposal must migrate
// to BDDs exactly once — preserving live EC ids, registered-policy
// verdicts, and provenance explain answers across the switch. A twin
// session pinned to the all-BDD backend runs the identical script and the
// two must agree bit for bit at every step.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "config/builders.h"
#include "core/rng.h"
#include "service/protocol.h"
#include "service/session.h"
#include "topo/generators.h"

namespace rcfg::service {
namespace {

PolicySpec reach(const std::string& name, const std::string& src, const std::string& dst,
                 net::Ipv4Prefix prefix) {
  PolicySpec spec;
  spec.kind = PolicySpec::Kind::kReachable;
  spec.name = name;
  spec.src = src;
  spec.dst = dst;
  spec.prefix = prefix;
  return spec;
}

SessionOptions backend_options(dpm::BackendKind kind) {
  SessionOptions opts;
  opts.verifier.packet_space = kind;
  opts.trace = true;  // provenance on: explain answers carry cause batches
  return opts;
}

/// Everything the two sessions must agree on after every step: partition
/// size, per-EC minimal witnesses (EC ids line up across backends), policy
/// verdicts, and explain answers.
void expect_sessions_agree(Session& a, Session& b, const char* where) {
  ASSERT_EQ(a.verifier().ecs().ec_count(), b.verifier().ecs().ec_count()) << where;
  for (dpm::EcId e = 0; e < a.verifier().ecs().ec_count(); ++e) {
    EXPECT_EQ(a.verifier().packet_space().pick_one(a.verifier().ecs().ec_bdd(e)),
              b.verifier().packet_space().pick_one(b.verifier().ecs().ec_bdd(e)))
        << where << ": EC " << e;
  }
  for (const PolicySpec& spec : a.policies()) {
    EXPECT_EQ(a.policy_satisfied(spec.name), b.policy_satisfied(spec.name))
        << where << ": policy " << spec.name;
    const auto ea = a.explain(spec.name);
    const auto eb = b.explain(spec.name);
    EXPECT_EQ(ea.explanation.has_witness, eb.explanation.has_witness)
        << where << ": " << spec.name;
    EXPECT_EQ(ea.explanation.witness_ec, eb.explanation.witness_ec)
        << where << ": " << spec.name;
    EXPECT_EQ(ea.explanation.witness, eb.explanation.witness)
        << where << ": " << spec.name;
    EXPECT_EQ(ea.explanation.offending_batch, eb.explanation.offending_batch)
        << where << ": " << spec.name;
  }
}

TEST(BackendMigrationSession, AclProposalMigratesOncePreservingEverything) {
  const topo::Topology t = topo::make_fat_tree(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);

  Session interval("iv", t, cfg, backend_options(dpm::BackendKind::kInterval));
  Session bdd("bd", t, cfg, backend_options(dpm::BackendKind::kBdd));
  ASSERT_EQ(interval.verifier().packet_space().active_backend(),
            dpm::BackendKind::kInterval);
  ASSERT_EQ(bdd.verifier().packet_space().active_backend(), dpm::BackendKind::kBdd);

  const std::string edge0 = t.node(0).name;
  const std::string edge1 = t.node(1).name;
  const std::string iface0 = t.iface(t.adjacencies(0)[0].iface).name;
  const std::string iface1 = t.iface(t.adjacencies(1)[0].iface).name;
  for (Session* s : {&interval, &bdd}) {
    s->add_policy(reach("p0", edge0, edge1, config::host_prefix(t.find_node(edge1))));
    s->add_policy(reach("p1", edge1, edge0, config::host_prefix(t.find_node(edge0))));
  }
  expect_sessions_agree(interval, bdd, "baseline");

  // Prefix-only churn: static routes + a link flap, committed. The interval
  // session must still be running on interval atoms afterwards.
  config::NetworkConfig churned = cfg;
  churned.devices.at(edge0).static_routes.push_back(
      {*net::Ipv4Prefix::parse("203.0.113.0/24"), config::kNullInterface, 1});
  config::fail_link(churned, t, 0);
  for (Session* s : {&interval, &bdd}) {
    ASSERT_TRUE(s->propose(churned).converged);
    s->commit();
  }
  config::NetworkConfig healed = churned;
  config::restore_link(healed, t, 0);
  for (Session* s : {&interval, &bdd}) {
    ASSERT_TRUE(s->propose(healed).converged);
    s->commit();
  }
  EXPECT_EQ(interval.verifier().packet_space().active_backend(),
            dpm::BackendKind::kInterval);
  EXPECT_FALSE(interval.verifier().packet_space().migrated());
  expect_sessions_agree(interval, bdd, "after prefix-only commits");

  // Pre-migration observables, keyed by live EC id.
  auto& ivrc = interval.verifier();
  const std::size_t ec_count_before = ivrc.ecs().ec_count();
  std::vector<std::optional<std::vector<bool>>> witnesses_before;
  for (dpm::EcId e = 0; e < ec_count_before; ++e) {
    witnesses_before.push_back(ivrc.packet_space().pick_one(ivrc.ecs().ec_bdd(e)));
    ASSERT_TRUE(witnesses_before.back().has_value()) << "EC " << e;
  }

  // Migration in isolation (no concurrent splits): every live EC id must
  // denote exactly the same packets afterwards.
  int migrations = 0;
  ivrc.packet_space().subscribe_migration([&] { ++migrations; });
  ivrc.packet_space().migrate_to_bdd();
  EXPECT_EQ(migrations, 1);
  EXPECT_TRUE(ivrc.packet_space().migrated());
  ASSERT_EQ(ivrc.ecs().ec_count(), ec_count_before);
  for (dpm::EcId e = 0; e < ec_count_before; ++e) {
    EXPECT_EQ(ivrc.packet_space().pick_one(ivrc.ecs().ec_bdd(e)), witnesses_before[e])
        << "EC " << e;
  }
  expect_sessions_agree(interval, bdd, "after isolated migration");

  // The ACL proposal would have been the organic trigger; after the manual
  // migration it must NOT fire a second one, and both sessions stay in
  // lockstep through the multi-field splits.
  config::NetworkConfig with_acl = healed;
  core::Rng rng{0xAC11};
  config::attach_random_acl(with_acl, t, edge0, iface0, true, 4, rng);
  for (Session* s : {&interval, &bdd}) {
    ASSERT_TRUE(s->propose(with_acl).converged);
    s->commit();
  }
  EXPECT_EQ(interval.verifier().packet_space().active_backend(), dpm::BackendKind::kBdd);
  EXPECT_EQ(migrations, 1);
  expect_sessions_agree(interval, bdd, "after ACL proposal");

  // And the migrated session keeps verifying: more prefix churn + a second
  // ACL, still in lockstep with the all-BDD twin (no second migration).
  config::NetworkConfig more = with_acl;
  more.devices.at(edge1).static_routes.push_back(
      {*net::Ipv4Prefix::parse("198.51.100.0/24"), config::kNullInterface, 1});
  config::attach_random_acl(more, t, edge1, iface1, false, 3, rng);
  for (Session* s : {&interval, &bdd}) {
    ASSERT_TRUE(s->propose(more).converged);
    s->commit();
  }
  EXPECT_EQ(migrations, 1);
  expect_sessions_agree(interval, bdd, "post-migration churn");
}

TEST(BackendMigrationSession, AutoStartsOnIntervalAtoms) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  Session s("auto", t, cfg, backend_options(dpm::BackendKind::kAuto));
  // Prefix-only workload: never migrates, answers from interval atoms.
  EXPECT_EQ(s.verifier().packet_space().active_backend(), dpm::BackendKind::kInterval);
  EXPECT_GT(s.verifier().ecs().ec_count(), 1u);
  // The BDD arena holds only its two terminals: nothing was ever built there.
  EXPECT_EQ(s.verifier().packet_space().bdd().node_count(), 2u);
}

TEST(BackendMigrationProtocol, OpenParsesPacketSpace) {
  const auto open_with = [](const std::string& extra) {
    return parse_request(
        R"({"id":1,"op":"open","session":"s","topology":{"kind":"ring","n":4},)"
        R"("config":"hostname r0")" +
        extra + "}");
  };
  // Default: auto.
  EXPECT_EQ(open_with("").options.verifier.packet_space, dpm::BackendKind::kAuto);
  EXPECT_EQ(open_with(R"(,"packet_space":"bdd")").options.verifier.packet_space,
            dpm::BackendKind::kBdd);
  EXPECT_EQ(open_with(R"(,"packet_space":"interval")").options.verifier.packet_space,
            dpm::BackendKind::kInterval);
  EXPECT_EQ(open_with(R"(,"packet_space":"auto")").options.verifier.packet_space,
            dpm::BackendKind::kAuto);
  EXPECT_THROW(open_with(R"(,"packet_space":"zdd")"), ProtocolError);
}

}  // namespace
}  // namespace rcfg::service
