#include "service/framing.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

namespace rcfg::service {
namespace {

json::Value round_trip(const json::Value& v) {
  std::string payload;
  encode_value(v, payload);
  return decode_value(payload);
}

TEST(Framing, ScalarsRoundTrip) {
  EXPECT_EQ(round_trip(json::Value()), json::Value());
  EXPECT_EQ(round_trip(json::Value(nullptr)), json::Value(nullptr));
  EXPECT_EQ(round_trip(json::Value(true)), json::Value(true));
  EXPECT_EQ(round_trip(json::Value(false)), json::Value(false));
  EXPECT_EQ(round_trip(json::Value(std::int64_t{0})), json::Value(std::int64_t{0}));
  EXPECT_EQ(round_trip(json::Value(std::int64_t{-1})), json::Value(std::int64_t{-1}));
  EXPECT_EQ(round_trip(json::Value(std::numeric_limits<std::int64_t>::max())),
            json::Value(std::numeric_limits<std::int64_t>::max()));
  EXPECT_EQ(round_trip(json::Value(std::numeric_limits<std::int64_t>::min())),
            json::Value(std::numeric_limits<std::int64_t>::min()));
  EXPECT_EQ(round_trip(json::Value(1.5)), json::Value(1.5));
  EXPECT_EQ(round_trip(json::Value(-0.0)), json::Value(-0.0));
  EXPECT_EQ(round_trip(json::Value(1e308)), json::Value(1e308));
}

TEST(Framing, IntAndDoubleStayDistinctKinds) {
  // JSON text would conflate 2 and 2.0; the binary tags must not.
  EXPECT_TRUE(round_trip(json::Value(std::int64_t{2})).is_int());
  EXPECT_TRUE(round_trip(json::Value(2.0)).is_double());
}

TEST(Framing, StringsRoundTrip) {
  EXPECT_EQ(round_trip(json::Value("")), json::Value(""));
  EXPECT_EQ(round_trip(json::Value("hello")), json::Value("hello"));
  const std::string nul_embedded("a\0b", 3);
  EXPECT_EQ(round_trip(json::Value(nul_embedded)).as_string(), nul_embedded);
  EXPECT_EQ(round_trip(json::Value("päckchen → 包")), json::Value("päckchen → 包"));
}

TEST(Framing, ContainersRoundTrip) {
  json::Value arr;
  arr.push_back(json::Value(1));
  arr.push_back(json::Value("two"));
  arr.push_back(json::Value());
  EXPECT_EQ(round_trip(arr), arr);

  json::Value obj;
  obj["id"] = json::Value(std::int64_t{7});
  obj["ok"] = json::Value(true);
  obj["nested"] = arr;
  obj["empty_obj"] = json::Value(json::Value::Object{});
  obj["empty_arr"] = json::Value(json::Value::Array{});
  EXPECT_EQ(round_trip(obj), obj);
}

TEST(Framing, DeepNestingWithinLimitRoundTrips) {
  json::Value v(std::int64_t{42});
  for (int i = 0; i < 200; ++i) {
    json::Value wrap;
    wrap.push_back(std::move(v));
    v = std::move(wrap);
  }
  EXPECT_EQ(round_trip(v), v);
}

TEST(Framing, NestingBeyondLimitThrows) {
  // 300 nested arrays encode fine (encoding is iterative over structure the
  // caller already built) but must be rejected on decode: the depth cap is
  // the recursion bound against hostile input.
  std::string payload;
  for (int i = 0; i < 300; ++i) {
    payload += '\x06';
    payload += std::string("\x01\x00\x00\x00", 4);
  }
  payload += '\x00';
  EXPECT_THROW(decode_value(payload), FramingError);
}

TEST(Framing, DecodeRejectsMalformedPayloads) {
  EXPECT_THROW(decode_value(""), FramingError);               // no tag
  EXPECT_THROW(decode_value("\xFF"), FramingError);           // unknown tag
  EXPECT_THROW(decode_value("\x03\x01\x02"), FramingError);   // truncated int64
  EXPECT_THROW(decode_value(std::string("\x05\x10\x00\x00\x00hi", 7)),
               FramingError);                                 // truncated string
  std::string trailing;
  encode_value(json::Value(true), trailing);
  trailing += 'x';
  EXPECT_THROW(decode_value(trailing), FramingError);         // trailing bytes
}

TEST(Framing, HostileCountIsRejectedWithoutAllocating) {
  // An array header claiming 2^32-1 elements inside a 5-byte payload must
  // throw, not reserve gigabytes: counts are validated against the bytes
  // actually remaining.
  EXPECT_THROW(decode_value(std::string("\x06\xFF\xFF\xFF\xFF", 5)), FramingError);
  EXPECT_THROW(decode_value(std::string("\x07\xFF\xFF\xFF\xFF", 5)), FramingError);
}

TEST(Framing, FramesRoundTripThroughStreams) {
  json::Value req;
  req["id"] = json::Value(std::int64_t{1});
  req["op"] = json::Value("query");

  std::stringstream stream;
  write_magic(stream);
  write_frame(stream, encode_frame(req).substr(4));  // write_frame adds the header
  std::string payload2;
  encode_value(json::Value("second"), payload2);
  write_frame(stream, payload2);

  read_magic(stream);
  std::string payload;
  ASSERT_TRUE(read_frame(stream, payload));
  EXPECT_EQ(decode_value(payload), req);
  ASSERT_TRUE(read_frame(stream, payload));
  EXPECT_EQ(decode_value(payload), json::Value("second"));
  EXPECT_FALSE(read_frame(stream, payload));  // clean EOF at a boundary
}

TEST(Framing, EncodeFrameIsHeaderPlusPayload) {
  std::string payload;
  encode_value(json::Value(true), payload);
  const std::string frame = encode_frame(json::Value(true));
  ASSERT_EQ(frame.size(), payload.size() + 4);
  const auto len = static_cast<std::uint32_t>(static_cast<unsigned char>(frame[0])) |
                   static_cast<std::uint32_t>(static_cast<unsigned char>(frame[1])) << 8 |
                   static_cast<std::uint32_t>(static_cast<unsigned char>(frame[2])) << 16 |
                   static_cast<std::uint32_t>(static_cast<unsigned char>(frame[3])) << 24;
  EXPECT_EQ(len, payload.size());
  EXPECT_EQ(frame.substr(4), payload);
}

TEST(Framing, TruncatedFrameThrows) {
  std::stringstream stream;
  const std::string frame = encode_frame(json::Value("truncate me"));
  stream.write(frame.data(), static_cast<std::streamsize>(frame.size() - 3));
  std::string payload;
  EXPECT_THROW(read_frame(stream, payload), FramingError);

  std::stringstream header_only;
  header_only.write("\x10\x00", 2);  // half a length header
  EXPECT_THROW(read_frame(header_only, payload), FramingError);
}

TEST(Framing, OversizedFrameLengthThrows) {
  // Header declares 2 GiB — above kMaxFrameBytes; must throw before any
  // attempt to read (or allocate) the payload.
  std::stringstream stream;
  stream.write("\x00\x00\x00\x80", 4);
  std::string payload;
  EXPECT_THROW(read_frame(stream, payload), FramingError);
}

TEST(Framing, BadMagicThrows) {
  std::stringstream stream("{\"id\":1}");
  EXPECT_THROW(read_magic(stream), FramingError);
  std::stringstream truncated;
  truncated.write("\xB5R", 2);
  EXPECT_THROW(read_magic(truncated), FramingError);
}

TEST(Framing, MagicFirstByteCannotStartJson) {
  // The auto-detection invariant: no JSON-lines request line may begin with
  // the magic byte. Lines start with '{', whitespace, or '#'.
  EXPECT_EQ(kFramingMagic[0], 0xB5);
  EXPECT_THROW(json::Value::parse("\xB5"), json::ParseError);
}

TEST(Framing, EncodingMatchesParsedJson) {
  // A value built from JSON text and re-encoded binary must decode equal —
  // the two framings describe the same value space.
  const json::Value doc = json::Value::parse(
      R"({"id":3,"ok":true,"nested":{"xs":[1,2.5,"three",null,false]}})");
  EXPECT_EQ(round_trip(doc), doc);
}

}  // namespace
}  // namespace rcfg::service
