#include "service/session.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "config/builders.h"
#include "dd/graph.h"
#include "service_test_util.h"
#include "topo/generators.h"

namespace rcfg::service {
namespace {

PolicySpec reach(const std::string& name, const std::string& src, const std::string& dst,
                 net::Ipv4Prefix prefix) {
  PolicySpec spec;
  spec.kind = PolicySpec::Kind::kReachable;
  spec.name = name;
  spec.src = src;
  spec.dst = dst;
  spec.prefix = prefix;
  return spec;
}

TEST(Session, CommitRoundTrip) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  Session s("net", t, cfg);
  EXPECT_EQ(s.name(), "net");
  EXPECT_FALSE(s.has_staged());
  EXPECT_GT(s.baseline_report().dataplane.fib.size(), 0u);

  const auto p2 = config::host_prefix(t.find_node("r2"));
  EXPECT_TRUE(s.add_policy(reach("r0-r2", "r0", "r2", p2)));
  EXPECT_TRUE(s.policy_satisfied("r0-r2"));

  config::NetworkConfig changed = cfg;
  config::fail_link(changed, t, 1);  // ring reroutes the long way
  const ProposeOutcome outcome = s.propose(changed);
  ASSERT_TRUE(outcome.converged);
  EXPECT_FALSE(outcome.report.dataplane.empty());
  EXPECT_TRUE(s.has_staged());
  EXPECT_TRUE(s.policy_satisfied("r0-r2"));

  s.commit();
  EXPECT_FALSE(s.has_staged());
  EXPECT_EQ(s.committed(), changed);
}

TEST(Session, AbortRollsBackIncrementally) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  Session s("net", t, cfg);
  const auto p2 = config::host_prefix(t.find_node("r2"));
  s.add_policy(reach("r0-r2", "r0", "r2", p2));
  const std::size_t baseline_pairs = s.verifier().checker().pair_count();

  // Cut r2 off entirely: the policy flips to violated.
  config::NetworkConfig broken = cfg;
  config::fail_link(broken, t, 1);
  config::fail_link(broken, t, 2);
  ASSERT_TRUE(s.propose(broken).converged);
  EXPECT_FALSE(s.policy_satisfied("r0-r2"));

  // Abort: live state returns to the committed config, incrementally.
  const auto rollback = s.abort();
  EXPECT_FALSE(s.has_staged());
  EXPECT_FALSE(rollback.dataplane.empty());
  EXPECT_TRUE(s.policy_satisfied("r0-r2"));
  EXPECT_EQ(s.verifier().checker().pair_count(), baseline_pairs);
  EXPECT_EQ(s.committed(), cfg);
}

TEST(Session, ReProposeReplacesStagedConfig) {
  const topo::Topology t = topo::make_ring(5);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  Session s("net", t, cfg);

  config::NetworkConfig c1 = cfg;
  config::fail_link(c1, t, 0);
  config::NetworkConfig c2 = cfg;
  config::fail_link(c2, t, 3);

  ASSERT_TRUE(s.propose(c1).converged);
  ASSERT_TRUE(s.propose(c2).converged);  // allowed: replaces the staged c1
  s.commit();
  EXPECT_EQ(s.committed(), c2);

  // Final state is as if only c2 had ever been applied.
  verify::RealConfig oracle(t);
  oracle.apply(cfg);
  oracle.apply(c2);
  EXPECT_EQ(s.verifier().checker().pair_count(), oracle.checker().pair_count());
}

TEST(Session, TransactionMisuseThrows) {
  const topo::Topology t = topo::make_ring(4);
  Session s("net", t, config::build_ospf_network(t));
  EXPECT_THROW(s.commit(), std::logic_error);
  EXPECT_THROW(s.abort(), std::logic_error);
}

TEST(Session, PolicyRegistryValidation) {
  const topo::Topology t = topo::make_ring(4);
  Session s("net", t, config::build_ospf_network(t));
  const auto p2 = config::host_prefix(t.find_node("r2"));
  s.add_policy(reach("p", "r0", "r2", p2));
  EXPECT_THROW(s.add_policy(reach("p", "r1", "r2", p2)), std::invalid_argument);
  EXPECT_THROW(s.add_policy(reach("q", "nosuch", "r2", p2)), std::invalid_argument);
  EXPECT_THROW(s.add_policy(reach("", "r0", "r2", p2)), std::invalid_argument);
  EXPECT_THROW(s.policy_satisfied("unknown"), std::invalid_argument);
  EXPECT_TRUE(s.has_policy("p"));
  EXPECT_FALSE(s.has_policy("q"));  // failed registration leaves no trace
}

TEST(Session, RecoversFromNonterminatingProposal) {
  const topo::Topology t = topo::make_full_mesh(4);
  const config::NetworkConfig good = config::build_bgp_network(t);
  Session s("net", t, good, testutil::fast_divergence_options());

  const auto p1 = config::host_prefix(t.find_node("m1"));
  s.add_policy(reach("m0-m1", "m0", "m1", p1));
  EXPECT_TRUE(s.policy_satisfied("m0-m1"));
  EXPECT_EQ(s.generation(), 1u);

  // Stage something first: recovery must also discard the staged proposal.
  config::NetworkConfig staged = good;
  config::fail_link(staged, t, 0);
  ASSERT_TRUE(s.propose(staged).converged);
  EXPECT_TRUE(s.has_staged());

  const ProposeOutcome bad = s.propose(testutil::bad_gadget(t));
  EXPECT_FALSE(bad.converged);
  EXPECT_FALSE(bad.error.empty());

  // The session transparently rebuilt from the last committed config.
  EXPECT_EQ(s.rebuilds(), 1u);
  EXPECT_EQ(s.generation(), 2u);
  EXPECT_FALSE(s.has_staged());
  EXPECT_FALSE(s.verifier().poisoned());
  EXPECT_TRUE(s.policy_satisfied("m0-m1"));  // policies survived the rebuild
  EXPECT_EQ(s.committed(), good);

  // And it keeps verifying incrementally afterwards.
  config::NetworkConfig after = good;
  config::fail_link(after, t, 2);
  const ProposeOutcome ok = s.propose(after);
  ASSERT_TRUE(ok.converged);
  EXPECT_FALSE(ok.report.dataplane.empty());
  s.commit();
  EXPECT_EQ(s.committed(), after);

  // Recovered state matches a fresh verifier over the same history.
  verify::RealConfig oracle(t);
  oracle.apply(good);
  oracle.apply(after);
  EXPECT_EQ(s.verifier().checker().pair_count(), oracle.checker().pair_count());
}

TEST(Session, ReRegisteredPoliciesFireAfterRecovery) {
  // Regression: the rebuild after a poisoned proposal re-registers every
  // policy on the fresh verifier. Those re-registrations must be LIVE —
  // wired into the checker's per-EC policy index so the next committed
  // change produces events — not merely present in the registry.
  const topo::Topology t = topo::make_full_mesh(4);
  const config::NetworkConfig good = config::build_bgp_network(t);
  Session s("net", t, good, testutil::fast_divergence_options());
  const auto p1 = config::host_prefix(t.find_node("m1"));
  s.add_policy(reach("m0-m1", "m0", "m1", p1));
  ASSERT_TRUE(s.policy_satisfied("m0-m1"));

  const ProposeOutcome bad = s.propose(testutil::bad_gadget(t));
  ASSERT_FALSE(bad.converged);
  ASSERT_EQ(s.rebuilds(), 1u);
  ASSERT_TRUE(s.policy_satisfied("m0-m1"));

  // Cut m1 off entirely in the first post-recovery change.
  config::NetworkConfig cut = good;
  for (const auto& adj : t.adjacencies(t.find_node("m1"))) {
    config::fail_link(cut, t, adj.link);
  }
  const ProposeOutcome outcome = s.propose(cut);
  ASSERT_TRUE(outcome.converged);
  EXPECT_FALSE(s.policy_satisfied("m0-m1"));

  // The flip arrived as a checker event naming the re-registered policy.
  bool fired = false;
  for (const verify::PolicyEvent& e : outcome.report.check.events) {
    if (s.policy_name(e.id) == "m0-m1") {
      fired = true;
      EXPECT_FALSE(e.satisfied);
    }
  }
  EXPECT_TRUE(fired) << "re-registered policy produced no event on the next change";
  s.commit();

  // And it flips back (with an event) when the repair lands.
  const ProposeOutcome repair = s.propose(good);
  ASSERT_TRUE(repair.converged);
  EXPECT_TRUE(s.policy_satisfied("m0-m1"));
  fired = false;
  for (const verify::PolicyEvent& e : repair.report.check.events) {
    if (s.policy_name(e.id) == "m0-m1") {
      fired = true;
      EXPECT_TRUE(e.satisfied);
    }
  }
  EXPECT_TRUE(fired);
}

TEST(Session, NonterminatingInitialConfigThrows) {
  const topo::Topology t = topo::make_full_mesh(4);
  // No committed baseline to fall back to: construction must fail loudly.
  EXPECT_THROW(
      Session("net", t, testutil::bad_gadget(t), testutil::fast_divergence_options()),
      dd::NonterminationError);
}

}  // namespace
}  // namespace rcfg::service
