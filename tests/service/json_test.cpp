#include "service/json.h"

#include <gtest/gtest.h>

#include <limits>

namespace rcfg::service::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_EQ(Value::parse("true").as_bool(), true);
  EXPECT_EQ(Value::parse("false").as_bool(), false);
  EXPECT_EQ(Value::parse("42").as_int(), 42);
  EXPECT_EQ(Value::parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(Value::parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Value::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Value::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntVsDoubleKinds) {
  EXPECT_TRUE(Value::parse("3").is_int());
  EXPECT_TRUE(Value::parse("3.0").is_double());
  // as_int accepts integral doubles, as_double accepts ints.
  EXPECT_EQ(Value::parse("3.0").as_int(), 3);
  EXPECT_DOUBLE_EQ(Value::parse("3").as_double(), 3.0);
  EXPECT_THROW(Value::parse("3.5").as_int(), TypeError);
}

TEST(Json, ParsesNestedStructures) {
  const Value v = Value::parse(R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[1].as_int(), 2);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_TRUE(v.find("c")->find("d")->is_null());
  EXPECT_EQ(v.get_string("e"), "x");
  EXPECT_EQ(v.get_string("missing", "fallback"), "fallback");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  const Value v = Value::parse(R"("a\"b\\c\nd\teAé")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA\xC3\xA9");
  // Round trip through dump().
  const std::string dumped = Value(std::string("x\"y\nz\t\x01")).dump();
  EXPECT_EQ(Value::parse(dumped).as_string(), "x\"y\nz\t\x01");
}

TEST(Json, UnicodeEscapes) {
  // BMP code points decode to UTF-8.
  EXPECT_EQ(Value::parse("\"\\u00e9\"").as_string(), "\xC3\xA9");      // é
  EXPECT_EQ(Value::parse("\"\\u20ac\"").as_string(), "\xE2\x82\xAC");  // €
  // A surrogate pair combines into one supplementary-plane code point.
  EXPECT_EQ(Value::parse("\"\\ud83d\\ude00\"").as_string(), "\xF0\x9F\x98\x80");  // 😀
  EXPECT_EQ(Value::parse("\"\\ud800\\udc00\"").as_string(), "\xF0\x90\x80\x80");  // U+10000
  EXPECT_EQ(Value::parse("\"\\udbff\\udfff\"").as_string(), "\xF4\x8F\xBF\xBF");  // U+10FFFF
  // Surrounding text survives the combination.
  EXPECT_EQ(Value::parse("\"a\\ud83d\\ude00b\"").as_string(),
            "a\xF0\x9F\x98\x80"
            "b");
}

TEST(Json, UnicodeEscapesRoundTrip) {
  // Raw UTF-8 (as a policy name would carry it) dumps verbatim and parses
  // back bit-identically...
  const std::string emoji = "pol-\xF0\x9F\x98\x80";
  EXPECT_EQ(Value::parse(Value(emoji).dump()).as_string(), emoji);
  // ...and the escaped spelling decodes to the same bytes, so both wire
  // forms of the same policy name name the same policy.
  EXPECT_EQ(Value::parse("\"pol-\\uD83D\\uDE00\"").as_string(), emoji);
}

TEST(Json, LoneSurrogatesAreRejected) {
  EXPECT_THROW(Value::parse("\"\\ud83d\""), ParseError);         // unpaired high at end
  EXPECT_THROW(Value::parse("\"\\ud83dxy\""), ParseError);       // high then plain text
  EXPECT_THROW(Value::parse("\"\\ud83d\\n\""), ParseError);      // high then other escape
  EXPECT_THROW(Value::parse("\"\\ud83d\\u0041\""), ParseError);  // high then non-surrogate
  EXPECT_THROW(Value::parse("\"\\ud83d\\ud83d\""), ParseError);  // high then high
  EXPECT_THROW(Value::parse("\"\\ude00\""), ParseError);         // lone low
  EXPECT_THROW(Value::parse("\"\\ude00\\ud83d\""), ParseError);  // reversed pair
}

TEST(Json, DumpIsDeterministicAndSorted) {
  Value v;
  v["zebra"] = Value(1);
  v["alpha"] = Value(true);
  v["mid"] = Value("s");
  EXPECT_EQ(v.dump(), R"({"alpha":true,"mid":"s","zebra":1})");
}

TEST(Json, RoundTripsArbitraryDocument) {
  const std::string doc =
      R"({"arr":[1,2.5,"three",null,true],"num":-12,"obj":{"inner":[{"k":"v"}]},"s":"line1\nline2"})";
  const Value v = Value::parse(doc);
  EXPECT_EQ(Value::parse(v.dump()), v);
  EXPECT_EQ(v.dump(), doc);
}

TEST(Json, BuilderInterface) {
  Value v;
  v["name"] = Value("rcfgd");
  v["counts"].push_back(Value(1));
  v["counts"].push_back(Value(2));
  EXPECT_EQ(v.dump(), R"({"counts":[1,2],"name":"rcfgd"})");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Value::parse(""), ParseError);
  EXPECT_THROW(Value::parse("{"), ParseError);
  EXPECT_THROW(Value::parse("[1,]"), ParseError);
  EXPECT_THROW(Value::parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(Value::parse("tru"), ParseError);
  EXPECT_THROW(Value::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Value::parse("1 2"), ParseError);  // trailing garbage
  EXPECT_THROW(Value::parse("{\"a\":1,}"), ParseError);
  EXPECT_THROW(Value::parse("\"bad \\q escape\""), ParseError);
}

TEST(Json, TypeErrors) {
  const Value v = Value::parse("[1]");
  EXPECT_THROW(v.as_object(), TypeError);
  EXPECT_THROW(v.as_string(), TypeError);
  EXPECT_THROW(v.as_bool(), TypeError);
  EXPECT_THROW(Value::parse("{\"a\":\"s\"}").get_int("a"), TypeError);
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Value(-std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, NonFiniteNumbersNestedStillRoundTrip) {
  // Regression: a NaN born from a degenerate stat (0/0 mean, an inf
  // min) must not leak a bare `nan`/`inf` token into a dump — that response
  // line would be unparseable by every JSON consumer downstream. The dump
  // substitutes null and therefore always re-parses.
  Value doc;
  doc["mean"] = Value(std::numeric_limits<double>::quiet_NaN());
  doc["min"] = Value(std::numeric_limits<double>::infinity());
  doc["scales"].push_back(Value(-std::numeric_limits<double>::infinity()));
  doc["scales"].push_back(Value(2.5));
  const std::string text = doc.dump();
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  const Value back = Value::parse(text);
  EXPECT_TRUE(back.find("mean")->is_null());
  EXPECT_TRUE(back.find("min")->is_null());
  EXPECT_TRUE(back.find("scales")->as_array()[0].is_null());
  EXPECT_DOUBLE_EQ(back.find("scales")->as_array()[1].as_double(), 2.5);
}

}  // namespace
}  // namespace rcfg::service::json
