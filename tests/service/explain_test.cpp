#include <gtest/gtest.h>

#include <string>

#include "config/builders.h"
#include "config/print.h"
#include "service/engine.h"
#include "topo/generators.h"

// End-to-end coverage for the `explain` verb: a waypoint policy on a ring
// is broken by a link failure, and the explanation must name the detour
// path hop by hop (LPM rule + ACL verdict per hop) plus the config-line
// edits of the batch that moved the policy's ECs.

namespace rcfg::service {
namespace {

Request open_request(std::uint64_t id, const std::string& session, unsigned n,
                     const config::NetworkConfig& cfg, bool trace) {
  Request req;
  req.id = id;
  req.verb = Verb::kOpen;
  req.session = session;
  req.topology.kind = "ring";
  req.topology.k = n;
  req.config_text = config::print_network(cfg);
  req.options.trace = trace;
  return req;
}

Request propose_request(std::uint64_t id, const std::string& session,
                        const config::NetworkConfig& cfg) {
  Request req;
  req.id = id;
  req.verb = Verb::kPropose;
  req.session = session;
  req.config_text = config::print_network(cfg);
  return req;
}

Request policy_request(std::uint64_t id, const std::string& session, PolicySpec spec) {
  Request req;
  req.id = id;
  req.verb = Verb::kAddPolicy;
  req.session = session;
  req.policy = std::move(spec);
  return req;
}

Request explain_request(std::uint64_t id, const std::string& session,
                        const std::string& policy) {
  Request req;
  req.id = id;
  req.verb = Verb::kExplain;
  req.session = session;
  req.query_policy = policy;
  return req;
}

PolicySpec waypoint_via_r1() {
  PolicySpec spec;
  spec.kind = PolicySpec::Kind::kWaypoint;
  spec.name = "via-r1";
  spec.src = "r0";
  spec.dst = "r2";
  spec.via = "r1";
  spec.prefix = config::host_prefix(2);
  return spec;
}

/// Ring of 4 where r0 prefers the clockwise path r0->r1->r2: the
/// counter-clockwise exit r0->r3 carries OSPF cost 10.
config::NetworkConfig steered_ring(const topo::Topology& t) {
  config::NetworkConfig cfg = config::build_ospf_network(t);
  config::set_ospf_cost(cfg, "r0", "to-r3", 10);
  return cfg;
}

TEST(Explain, ViolatedWaypointNamesDetourAndConfigCause) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig base = steered_ring(t);

  Engine engine;
  Response r = engine.call(open_request(1, "net", 4, base, /*trace=*/true));
  ASSERT_TRUE(r.ok) << r.error;

  r = engine.call(policy_request(2, "net", waypoint_via_r1()));
  ASSERT_TRUE(r.ok) << r.error;

  // Fail the r0-r1 link: traffic to r2 detours via r3, skipping the waypoint.
  config::NetworkConfig broken = base;
  config::fail_link(broken, t, 0);
  r = engine.call(propose_request(3, "net", broken));
  ASSERT_TRUE(r.ok) << r.error;

  // Empty policy name: explain resolves to the most recent violation.
  r = engine.call(explain_request(4, "net", ""));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.body.get_string("policy"), "via-r1");
  EXPECT_EQ(r.body.get_string("kind"), "waypoint");
  EXPECT_FALSE(r.body.get_bool("satisfied", true));
  EXPECT_TRUE(r.body.get_bool("trace_enabled"));

  const json::Value* witness = r.body.find("witness");
  ASSERT_NE(witness, nullptr);
  EXPECT_EQ(witness->get_string("ingress"), "r0");
  EXPECT_FALSE(witness->get_string("dst").empty());

  // The witness flow must be delivered along the detour r0 -> r3 -> r2,
  // with an LPM rule at every forwarding hop.
  const json::Value* branches = r.body.find("branches");
  ASSERT_NE(branches, nullptr);
  bool found_detour = false;
  for (const json::Value& b : branches->as_array()) {
    if (b.get_string("disposition") != "delivered") continue;
    const auto& hops = b.find("hops")->as_array();
    ASSERT_EQ(hops.size(), 3u);
    EXPECT_EQ(hops[0].get_string("node"), "r0");
    EXPECT_EQ(hops[1].get_string("node"), "r3");
    EXPECT_EQ(hops[2].get_string("node"), "r2");
    for (const json::Value& h : hops) {
      EXPECT_NE(h.get_string("lpm"), "no route") << h.dump();
      EXPECT_FALSE(h.get_string("action").empty());
    }
    EXPECT_EQ(hops[0].get_string("egress"), "to-r3");
    EXPECT_EQ(hops[1].get_string("egress"), "to-r2");
    found_detour = true;
  }
  EXPECT_TRUE(found_detour);

  // The cause must point at the propose batch and carry config-line edits
  // for the shut interfaces on a device whose rules actually moved.
  const json::Value* cause = r.body.find("cause");
  ASSERT_NE(cause, nullptr);
  EXPECT_EQ(cause->get_string("label"), "propose");
  EXPECT_GT(cause->get_int("batch"), 0);
  const json::Value* devices = cause->find("devices");
  ASSERT_NE(devices, nullptr);
  ASSERT_FALSE(devices->as_array().empty());
  bool saw_direct = false;
  bool saw_shutdown_line = false;
  for (const json::Value& d : devices->as_array()) {
    if (d.get_bool("direct")) saw_direct = true;
    for (const json::Value& e : d.find("edits")->as_array()) {
      if (e.get_string("text").find("shutdown") != std::string::npos) {
        EXPECT_EQ(e.get_string("op"), "insert");
        saw_shutdown_line = true;
      }
    }
  }
  EXPECT_TRUE(saw_direct);
  EXPECT_TRUE(saw_shutdown_line);
}

TEST(Explain, ByNameAfterCommitKeepsProvenance) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig base = steered_ring(t);

  Engine engine;
  ASSERT_TRUE(engine.call(open_request(1, "net", 4, base, /*trace=*/true)).ok);
  ASSERT_TRUE(engine.call(policy_request(2, "net", waypoint_via_r1())).ok);

  config::NetworkConfig broken = base;
  config::fail_link(broken, t, 0);
  ASSERT_TRUE(engine.call(propose_request(3, "net", broken)).ok);
  Request commit;
  commit.id = 4;
  commit.verb = Verb::kCommit;
  commit.session = "net";
  ASSERT_TRUE(engine.call(std::move(commit)).ok);

  const Response r = engine.call(explain_request(5, "net", "via-r1"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.body.get_string("policy"), "via-r1");
  EXPECT_FALSE(r.body.get_bool("satisfied", true));
  ASSERT_NE(r.body.find("cause"), nullptr);
  EXPECT_EQ(r.body.find("cause")->get_string("label"), "propose");
}

TEST(Explain, PayAsYouGoWithoutTracing) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig base = steered_ring(t);

  Engine engine;
  ASSERT_TRUE(engine.call(open_request(1, "net", 4, base, /*trace=*/false)).ok);
  ASSERT_TRUE(engine.call(policy_request(2, "net", waypoint_via_r1())).ok);

  config::NetworkConfig broken = base;
  config::fail_link(broken, t, 0);
  ASSERT_TRUE(engine.call(propose_request(3, "net", broken)).ok);

  // Without tracing the witness trace still works (it replays the live
  // model), but there is no provenance log: no cause, and the empty-name
  // shorthand cannot resolve "the last violation".
  Response r = engine.call(explain_request(4, "net", "via-r1"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.body.get_bool("trace_enabled", true));
  EXPECT_FALSE(r.body.get_bool("satisfied", true));
  ASSERT_NE(r.body.find("branches"), nullptr);
  EXPECT_EQ(r.body.find("cause"), nullptr);
}

TEST(Explain, SatisfiedPolicyShowsCompliantPath) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig base = steered_ring(t);

  Engine engine;
  ASSERT_TRUE(engine.call(open_request(1, "net", 4, base, /*trace=*/true)).ok);
  ASSERT_TRUE(engine.call(policy_request(2, "net", waypoint_via_r1())).ok);

  const Response r = engine.call(explain_request(3, "net", "via-r1"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.body.get_bool("satisfied"));
  const json::Value* branches = r.body.find("branches");
  ASSERT_NE(branches, nullptr);
  bool via_r1 = false;
  for (const json::Value& b : branches->as_array()) {
    for (const json::Value& h : b.find("hops")->as_array()) {
      if (h.get_string("node") == "r1") via_r1 = true;
    }
  }
  EXPECT_TRUE(via_r1);
  // The batch that last moved this policy's ECs is the baseline itself.
  const json::Value* cause = r.body.find("cause");
  ASSERT_NE(cause, nullptr);
  EXPECT_EQ(cause->get_string("label"), "open");
}

TEST(Explain, ErrorsOnUnknownPolicyAndWhenNothingIsViolated) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig base = steered_ring(t);

  Engine engine;
  ASSERT_TRUE(engine.call(open_request(1, "net", 4, base, /*trace=*/true)).ok);
  ASSERT_TRUE(engine.call(policy_request(2, "net", waypoint_via_r1())).ok);

  Response r = engine.call(explain_request(3, "net", "no-such-policy"));
  EXPECT_FALSE(r.ok);

  // Everything is satisfied: the empty-name shorthand has nothing to pick.
  r = engine.call(explain_request(4, "net", ""));
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace rcfg::service
