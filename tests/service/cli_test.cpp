#include "service/cli.h"

#include <gtest/gtest.h>

#include <climits>
#include <string>

namespace rcfg::service {
namespace {

TEST(Cli, ParseCountAcceptsPlainPositiveIntegers) {
  EXPECT_EQ(parse_count_arg("1"), 1u);
  EXPECT_EQ(parse_count_arg("64"), 64u);
  EXPECT_EQ(parse_count_arg("10000"), 10000u);
  EXPECT_EQ(parse_count_arg(std::to_string(UINT_MAX).c_str()), UINT_MAX);
}

TEST(Cli, ParseCountRejectsTrailingGarbage) {
  // Regression: strtol with a null end pointer silently accepted "4x" as 4,
  // so `--workers 4x` (or a mistyped "4,8") started the daemon with a
  // misread thread count instead of failing fast.
  EXPECT_FALSE(parse_count_arg("4x").has_value());
  EXPECT_FALSE(parse_count_arg("4 8").has_value());
  EXPECT_FALSE(parse_count_arg("4.5").has_value());
  EXPECT_FALSE(parse_count_arg("0x10").has_value());
}

TEST(Cli, ParseCountRejectsNonPositiveAndNonNumeric) {
  EXPECT_FALSE(parse_count_arg(nullptr).has_value());
  EXPECT_FALSE(parse_count_arg("").has_value());
  EXPECT_FALSE(parse_count_arg("0").has_value());
  EXPECT_FALSE(parse_count_arg("-3").has_value());
  EXPECT_FALSE(parse_count_arg("+3").has_value());  // first char must be a digit
  EXPECT_FALSE(parse_count_arg(" 3").has_value());
  EXPECT_FALSE(parse_count_arg("abc").has_value());
}

TEST(Cli, ParseCountRejectsOutOfRangeValues) {
  // Regression: the old parser truncated long->unsigned, so values above
  // UINT_MAX (or huge strings saturating strtol at LONG_MAX) wrapped into
  // arbitrary small counts.
  EXPECT_FALSE(parse_count_arg("4294967296").has_value());  // UINT_MAX + 1
  EXPECT_FALSE(parse_count_arg("99999999999999999999999999").has_value());
}

TEST(Cli, ParseFramingRecognizesTheThreeModes) {
  EXPECT_EQ(parse_framing_arg("auto"), Framing::kAuto);
  EXPECT_EQ(parse_framing_arg("jsonl"), Framing::kJsonl);
  EXPECT_EQ(parse_framing_arg("binary"), Framing::kBinary);
  EXPECT_FALSE(parse_framing_arg("json").has_value());
  EXPECT_FALSE(parse_framing_arg("BINARY").has_value());
  EXPECT_FALSE(parse_framing_arg("").has_value());
  EXPECT_FALSE(parse_framing_arg(nullptr).has_value());
}

}  // namespace
}  // namespace rcfg::service
