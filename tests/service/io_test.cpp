// run_service / EnginePool coverage: framing auto-detection end to end,
// the exception-safe shutdown path (a throwing sink must not lose the
// engine drain or the remaining responses), session sharding, and
// admission control.

#include "service/io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "config/builders.h"
#include "config/print.h"
#include "service/framing.h"
#include "service/pool.h"
#include "topo/generators.h"

namespace rcfg::service {
namespace {

std::string ring_config_text(unsigned n) {
  return config::print_network(config::build_ospf_network(topo::make_ring(n)));
}

json::Value open_doc(std::uint64_t id, const std::string& session, unsigned n) {
  json::Value doc;
  doc["id"] = json::Value(id);
  doc["op"] = json::Value("open");
  doc["session"] = json::Value(session);
  json::Value topology;
  topology["kind"] = json::Value("ring");
  topology["n"] = json::Value(n);
  doc["topology"] = std::move(topology);
  doc["config"] = json::Value(ring_config_text(n));
  return doc;
}

json::Value verb_doc(std::uint64_t id, const std::string& session, const std::string& op) {
  json::Value doc;
  doc["id"] = json::Value(id);
  doc["op"] = json::Value(op);
  doc["session"] = json::Value(session);
  return doc;
}

/// Decode every response frame of a binary output stream, magic included.
std::vector<json::Value> decode_output(const std::string& bytes) {
  std::istringstream in(bytes);
  read_magic(in);
  std::vector<json::Value> out;
  std::string payload;
  while (read_frame(in, payload)) out.push_back(decode_value(payload));
  return out;
}

/// Drop object keys ending in "_ms": wall-clock spans are the only bytes
/// allowed to differ between two replays of the same script.
void scrub_timings(json::Value& v) {
  if (v.is_object()) {
    auto& obj = v.as_object();
    for (auto it = obj.begin(); it != obj.end();) {
      if (it->first.size() > 3 &&
          it->first.compare(it->first.size() - 3, 3, "_ms") == 0) {
        it = obj.erase(it);
      } else {
        scrub_timings(it->second);
        ++it;
      }
    }
  } else if (v.is_array()) {
    for (json::Value& child : v.as_array()) scrub_timings(child);
  }
}

const json::Value* find_by_id(const std::vector<json::Value>& docs, std::int64_t id) {
  for (const json::Value& d : docs) {
    if (d.get_int("id") == id) return &d;
  }
  return nullptr;
}

TEST(RunService, AutoDetectsJsonLines) {
  std::istringstream in(open_doc(1, "net", 4).dump() + "\n" +
                        verb_doc(2, "net", "query").dump() + "\n");
  std::ostringstream out;
  run_service(in, out);

  // JSON in => JSON out: every line parses and echoes its id.
  std::istringstream lines(out.str());
  std::string line;
  int seen = 0;
  while (std::getline(lines, line)) {
    const json::Value doc = json::Value::parse(line);
    EXPECT_TRUE(doc.get_bool("ok")) << line;
    ++seen;
  }
  EXPECT_EQ(seen, 2);
}

TEST(RunService, AutoDetectsBinaryFramesEndToEnd) {
  std::ostringstream req_stream;
  write_magic(req_stream);
  write_frame(req_stream, encode_frame(open_doc(1, "net", 4)).substr(4));
  std::string q;
  encode_value(verb_doc(2, "net", "query"), q);
  write_frame(req_stream, q);

  std::istringstream in(req_stream.str());
  std::ostringstream out;
  run_service(in, out);  // framing: kAuto — detected from the 0xB5 byte

  const std::vector<json::Value> responses = decode_output(out.str());
  ASSERT_EQ(responses.size(), 2u);
  const json::Value* open = find_by_id(responses, 1);
  const json::Value* query = find_by_id(responses, 2);
  ASSERT_NE(open, nullptr);
  ASSERT_NE(query, nullptr);
  EXPECT_TRUE(open->get_bool("ok"));
  EXPECT_EQ(open->get_string("status"), "open");
  EXPECT_TRUE(query->get_bool("ok"));
  EXPECT_GT(query->get_int("pairs"), 0);
}

TEST(RunService, BinaryAnswersMatchJsonlAnswers) {
  // The same request stream through both framings must produce the same
  // response objects (modulo framing) — the differential the fuzz oracle
  // scales up.
  const std::vector<json::Value> requests = {open_doc(1, "net", 4),
                                             verb_doc(2, "net", "query"),
                                             verb_doc(3, "net", "commit")};

  std::string jsonl_in;
  std::ostringstream binary_in;
  write_magic(binary_in);
  for (const json::Value& r : requests) {
    jsonl_in += r.dump() + "\n";
    std::string payload;
    encode_value(r, payload);
    write_frame(binary_in, payload);
  }

  std::istringstream in1(jsonl_in), in2(binary_in.str());
  std::ostringstream out1, out2;
  run_service(in1, out1);
  run_service(in2, out2);

  std::vector<json::Value> jsonl_docs;
  std::istringstream lines(out1.str());
  std::string line;
  while (std::getline(lines, line)) jsonl_docs.push_back(json::Value::parse(line));
  std::vector<json::Value> binary_docs = decode_output(out2.str());
  for (json::Value& d : jsonl_docs) scrub_timings(d);
  for (json::Value& d : binary_docs) scrub_timings(d);

  ASSERT_EQ(jsonl_docs.size(), requests.size());
  ASSERT_EQ(binary_docs.size(), requests.size());
  for (const json::Value& want : jsonl_docs) {
    const json::Value* got = find_by_id(binary_docs, want.get_int("id"));
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->dump(), want.dump());
  }
}

TEST(RunService, ExplicitBinaryOnJsonInputAnswersFramingError) {
  std::istringstream in("{\"id\":1,\"op\":\"stats\"}\n");
  std::ostringstream out;
  ServiceOptions options;
  options.framing = Framing::kBinary;
  run_service(in, out, options);  // must return, not throw

  const std::vector<json::Value> responses = decode_output(out.str());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].get_bool("ok"));
  EXPECT_NE(responses[0].get_string("error").find("framing"), std::string::npos);
}

TEST(RunService, MalformedFrameValueAnswersErrorAndKeepsServing) {
  std::ostringstream req_stream;
  write_magic(req_stream);
  write_frame(req_stream, "\xFF");  // intact frame, garbage value inside
  std::string payload;
  encode_value(verb_doc(7, "", "stats"), payload);
  write_frame(req_stream, payload);

  std::istringstream in(req_stream.str());
  std::ostringstream out;
  run_service(in, out);

  const std::vector<json::Value> responses = decode_output(out.str());
  ASSERT_EQ(responses.size(), 2u);  // the error AND the stats answer
  ASSERT_NE(find_by_id(responses, 7), nullptr);
  EXPECT_TRUE(find_by_id(responses, 7)->get_bool("ok"));
}

/// A streambuf that throws once, mid-write, after `trigger` bytes — the
/// shape of a peer hanging up while a response is being written.
class ThrowOnceBuf : public std::streambuf {
 public:
  explicit ThrowOnceBuf(std::size_t trigger) : trigger_(trigger) {}
  const std::string& bytes() const { return out_; }

 protected:
  int_type overflow(int_type ch) override {
    if (!thrown_ && out_.size() >= trigger_) {
      thrown_ = true;
      throw std::runtime_error("sink: connection reset");
    }
    if (ch != traits_type::eof()) out_.push_back(static_cast<char>(ch));
    return ch;
  }

 private:
  std::size_t trigger_;
  bool thrown_ = false;
  std::string out_;
};

TEST(RunService, ThrowingSinkStillDrainsAndAnswersTheRest) {
  // Regression for the shutdown path: the old run_jsonl emitted with no
  // try/catch, so a throwing sink unwound the loop frame and ~Engine then
  // drained worker callbacks into a destroyed output mutex. Now the emitter
  // swallows sink failures and the scope guard drains first: the loop must
  // return normally and every later response must still be delivered.
  std::istringstream in(open_doc(1, "net", 4).dump() + "\n" +
                        verb_doc(2, "net", "query").dump() + "\n" +
                        verb_doc(3, "net", "query").dump() + "\n");

  // Trigger inside the first response: id 1's line starts, then the sink
  // throws; ids 2 and 3 must still appear afterwards.
  ThrowOnceBuf buf(10);
  std::ostream out(&buf);
  run_service(in, out);  // must neither throw nor deadlock

  EXPECT_NE(buf.bytes().find("\"id\":2"), std::string::npos) << buf.bytes();
  EXPECT_NE(buf.bytes().find("\"id\":3"), std::string::npos) << buf.bytes();
}

TEST(EnginePool, ShardsSessionsAndMergesStats) {
  PoolOptions options;
  options.engines = 2;
  EnginePool pool(options);

  const std::string cfg = ring_config_text(4);
  for (int i = 1; i <= 4; ++i) {
    Request req;
    req.id = static_cast<std::uint64_t>(i);
    req.verb = Verb::kOpen;
    req.session = "s" + std::to_string(i);
    req.topology.kind = "ring";
    req.topology.k = 4;
    req.config_text = cfg;
    ASSERT_TRUE(pool.call(std::move(req)).ok);
  }
  EXPECT_EQ(pool.session_count(), 4u);

  Request stats;
  stats.id = 99;
  stats.verb = Verb::kStats;
  const Response r = pool.call(std::move(stats));
  ASSERT_TRUE(r.ok);
  ASSERT_NE(r.body.find("engines"), nullptr);
  EXPECT_EQ(r.body.find("engines")->as_array().size(), 2u);
  ASSERT_NE(r.body.find("pool"), nullptr);
  EXPECT_EQ(r.body.find("pool")->get_int("sessions"), 4);

  // Sharding is a pure function of the name: resubmitting to a session must
  // find it (same engine), regardless of which engine that is.
  Request q;
  q.id = 100;
  q.verb = Verb::kQuery;
  q.session = "s3";
  EXPECT_TRUE(pool.call(std::move(q)).ok);
}

TEST(EnginePool, DeniesOpensBeyondMaxSessions) {
  PoolOptions options;
  options.engines = 2;
  options.max_sessions = 2;
  EnginePool pool(options);

  const std::string cfg = ring_config_text(4);
  const auto open = [&](std::uint64_t id, const std::string& name) {
    Request req;
    req.id = id;
    req.verb = Verb::kOpen;
    req.session = name;
    req.topology.kind = "ring";
    req.topology.k = 4;
    req.config_text = cfg;
    return pool.call(std::move(req));
  };

  ASSERT_TRUE(open(1, "a").ok);
  ASSERT_TRUE(open(2, "b").ok);
  const Response denied = open(3, "c");
  EXPECT_FALSE(denied.ok);
  EXPECT_NE(denied.error.find("admission denied"), std::string::npos) << denied.error;
  EXPECT_EQ(denied.id, 3u);
  EXPECT_EQ(pool.admission_denials(), 1u);
  EXPECT_EQ(pool.session_count(), 2u);

  // Non-open traffic to live sessions is unaffected by the cap.
  Request q;
  q.id = 4;
  q.verb = Verb::kQuery;
  q.session = "a";
  EXPECT_TRUE(pool.call(std::move(q)).ok);
}

TEST(RunService, PoolEngagedThroughServiceOptions) {
  ServiceOptions options;
  options.engines = 2;
  options.max_sessions = 1;
  // The stats line is a synchronization point: it drains the pool, so the
  // first open is fully processed (and counted) before the second open is
  // even read — making the admission denial deterministic.
  std::istringstream in(open_doc(1, "one", 4).dump() + "\n" +
                        verb_doc(99, "", "stats").dump() + "\n" +
                        open_doc(2, "two", 4).dump() + "\n");
  std::ostringstream out;
  run_service(in, out, options);

  std::vector<json::Value> docs;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) docs.push_back(json::Value::parse(line));
  ASSERT_EQ(docs.size(), 3u);
  const json::Value* first = find_by_id(docs, 1);
  const json::Value* second = find_by_id(docs, 2);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(first->get_bool("ok"));
  EXPECT_FALSE(second->get_bool("ok"));
  EXPECT_NE(second->get_string("error").find("admission denied"), std::string::npos);
}

}  // namespace
}  // namespace rcfg::service
