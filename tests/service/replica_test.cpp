// Read-replica correctness: sessions opened with "replicas":N must answer
// reads bit-identically to the primary at the acknowledged epoch, across
// delta replay (propose/commit/abort/add_policy), snapshot resyncs
// (rebuilds, reclamation remaps), and the round-robin lane routing.

#include <gtest/gtest.h>

#include <string>

#include "config/builders.h"
#include "config/print.h"
#include "service/engine.h"
#include "service_test_util.h"
#include "topo/generators.h"

namespace rcfg::service {
namespace {

Request open_request(std::uint64_t id, const std::string& session, const std::string& kind,
                     unsigned k, const config::NetworkConfig& cfg,
                     const SessionOptions& opts = {}) {
  Request req;
  req.id = id;
  req.verb = Verb::kOpen;
  req.session = session;
  req.topology.kind = kind;
  req.topology.k = k;
  req.config_text = config::print_network(cfg);
  req.options = opts;
  return req;
}

Request propose_request(std::uint64_t id, const std::string& session,
                        const config::NetworkConfig& cfg) {
  Request req;
  req.id = id;
  req.verb = Verb::kPropose;
  req.session = session;
  req.config_text = config::print_network(cfg);
  return req;
}

Request verb_request(std::uint64_t id, const std::string& session, Verb verb) {
  Request req;
  req.id = id;
  req.verb = verb;
  req.session = session;
  return req;
}

Request query_request(std::uint64_t id, const std::string& session, bool primary,
                      const std::string& policy = "") {
  Request req = verb_request(id, session, Verb::kQuery);
  req.force_primary = primary;
  req.query_policy = policy;
  return req;
}

PolicySpec reach(const std::string& name, const std::string& src, const std::string& dst,
                 net::Ipv4Prefix prefix) {
  PolicySpec spec;
  spec.kind = PolicySpec::Kind::kReachable;
  spec.name = name;
  spec.src = src;
  spec.dst = dst;
  spec.prefix = prefix;
  return spec;
}

/// One replica-served read and its primary-pinned twin must serialize to
/// the same bytes (ids are aligned so only the answered state can differ).
void expect_parity(Engine& engine, const std::string& session, const std::string& policy = "") {
  const Response replica = engine.call(query_request(900, session, false, policy));
  const Response primary = engine.call(query_request(900, session, true, policy));
  ASSERT_TRUE(replica.ok) << replica.error;
  ASSERT_TRUE(primary.ok) << primary.error;
  EXPECT_EQ(serialize_response(replica), serialize_response(primary));
}

TEST(Replica, QueriesMatchPrimaryBitForBitAcrossLanes) {
  const topo::Topology t = topo::make_ring(6);
  const config::NetworkConfig cfg = config::build_ospf_network(t);

  SessionOptions sopts;
  sopts.replicas = 2;
  EngineOptions opts;
  opts.read_workers = 2;
  Engine engine(opts);

  ASSERT_TRUE(engine.call(open_request(1, "net", "ring", 6, cfg, sopts)).ok);
  Request add = verb_request(2, "net", Verb::kAddPolicy);
  add.policy = reach("r0-r3", "r0", "r3", config::host_prefix(t.find_node("r3")));
  ASSERT_TRUE(engine.call(add).ok);

  config::NetworkConfig c1 = cfg;
  config::fail_link(c1, t, 0);
  ASSERT_TRUE(engine.call(propose_request(3, "net", c1)).ok);

  // More reads than lanes: round-robin forces both replicas to answer, and
  // each answer must equal the primary's.
  for (int i = 0; i < 6; ++i) {
    SCOPED_TRACE("read " + std::to_string(i));
    expect_parity(engine, "net");
    expect_parity(engine, "net", "r0-r3");
  }
  engine.drain();
  EXPECT_GE(engine.metrics().replica_queries.value(), 12u);
  EXPECT_EQ(engine.metrics().replicas_open.value(), 2);
  // open + add_policy + propose each streamed one delta to each of 2 lanes.
  EXPECT_GE(engine.metrics().replica_deltas.value(), 4u);
  EXPECT_EQ(engine.metrics().replica_lane_failures.value(), 0u);
}

TEST(Replica, ReadsObserveAcknowledgedWritesImmediately) {
  const topo::Topology t = topo::make_ring(6);
  const config::NetworkConfig base = config::build_ospf_network(t);

  SessionOptions sopts;
  sopts.replicas = 1;
  Engine engine;
  ASSERT_TRUE(engine.call(open_request(1, "net", "ring", 6, base, sopts)).ok);

  // call() returns only after the engine acknowledged the mutation, so the
  // very next replica read is fenced at (at least) that epoch: it must see
  // the staged flag and the post-apply counts, never the previous state.
  verify::RealConfig oracle(t);
  oracle.apply(base);
  for (unsigned link = 0; link < 4; ++link) {
    SCOPED_TRACE("churn round " + std::to_string(link));
    config::NetworkConfig cfg = base;
    config::fail_link(cfg, t, link);
    ASSERT_TRUE(engine.call(propose_request(10 + link, "net", cfg)).ok);
    oracle.apply(cfg);

    const Response q = engine.call(query_request(100 + link, "net", false));
    ASSERT_TRUE(q.ok) << q.error;
    EXPECT_TRUE(q.body.get_bool("staged"));
    EXPECT_EQ(q.body.get_int("pairs"),
              static_cast<std::int64_t>(oracle.checker().pair_count()));

    ASSERT_TRUE(engine.call(verb_request(200 + link, "net", Verb::kAbort)).ok);
    oracle.apply(base);
    const Response after = engine.call(query_request(300 + link, "net", false));
    ASSERT_TRUE(after.ok) << after.error;
    EXPECT_FALSE(after.body.get_bool("staged"));
    EXPECT_EQ(after.body.get_int("pairs"),
              static_cast<std::int64_t>(oracle.checker().pair_count()));
  }
}

TEST(Replica, CommitAndAbortStreamToLanes) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig base = config::build_ospf_network(t);
  SessionOptions sopts;
  sopts.replicas = 2;
  Engine engine;
  ASSERT_TRUE(engine.call(open_request(1, "net", "ring", 4, base, sopts)).ok);

  config::NetworkConfig c1 = base;
  config::fail_link(c1, t, 1);
  ASSERT_TRUE(engine.call(propose_request(2, "net", c1)).ok);
  ASSERT_TRUE(engine.call(verb_request(3, "net", Verb::kCommit)).ok);
  expect_parity(engine, "net");

  config::NetworkConfig c2 = c1;
  config::fail_link(c2, t, 2);
  ASSERT_TRUE(engine.call(propose_request(4, "net", c2)).ok);
  expect_parity(engine, "net");
  ASSERT_TRUE(engine.call(verb_request(5, "net", Verb::kAbort)).ok);
  expect_parity(engine, "net");
  engine.drain();
  EXPECT_EQ(engine.metrics().replica_lane_failures.value(), 0u);
}

TEST(Replica, ExplainMatchesPrimaryIncludingProvenanceTimings) {
  const topo::Topology t = topo::make_ring(6);
  const config::NetworkConfig base = config::build_ospf_network(t);

  SessionOptions sopts;
  sopts.replicas = 2;
  sopts.trace = true;
  Engine engine;
  ASSERT_TRUE(engine.call(open_request(1, "net", "ring", 6, base, sopts)).ok);
  Request add = verb_request(2, "net", Verb::kAddPolicy);
  add.policy = reach("r0-r3", "r0", "r3", config::host_prefix(t.find_node("r3")));
  ASSERT_TRUE(engine.call(add).ok);

  // Cut r3 off so the policy is violated and explain has a cause to name.
  config::NetworkConfig broken = base;
  config::fail_link(broken, t, 2);
  config::fail_link(broken, t, 3);
  ASSERT_TRUE(engine.call(propose_request(3, "net", broken)).ok);

  // kApply streams the primary's BatchRecord, so even the cause's
  // generate/model/check millisecond spans must agree byte-for-byte.
  for (int i = 0; i < 4; ++i) {
    SCOPED_TRACE("explain " + std::to_string(i));
    Request replica_req = verb_request(50, "net", Verb::kExplain);
    replica_req.query_policy = "r0-r3";
    Request primary_req = replica_req;
    primary_req.force_primary = true;
    const Response replica = engine.call(replica_req);
    const Response primary = engine.call(primary_req);
    ASSERT_TRUE(replica.ok) << replica.error;
    ASSERT_TRUE(primary.ok) << primary.error;
    EXPECT_EQ(serialize_response(replica), serialize_response(primary));
    EXPECT_EQ(replica.body.get_bool("satisfied"), false);
  }
}

TEST(Replica, RebuildAfterNonterminationResyncsLanes) {
  const topo::Topology t = topo::make_full_mesh(4);
  const config::NetworkConfig good = config::build_bgp_network(t);
  const config::NetworkConfig bad = testutil::bad_gadget(t);

  SessionOptions sopts = testutil::fast_divergence_options();
  sopts.replicas = 1;
  Engine engine;
  ASSERT_TRUE(engine.call(open_request(1, "net", "full_mesh", 4, good, sopts)).ok);
  expect_parity(engine, "net");

  const Response p = engine.call(propose_request(2, "net", bad));
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.body.get_string("status"), "nonconvergent");
  EXPECT_TRUE(p.body.get_bool("recovered"));

  // The primary rebuilt from the committed baseline (fresh EC id space);
  // the lane must have been resynced with a fresh fork, not replayed.
  engine.drain();
  EXPECT_GE(engine.metrics().replica_resyncs.value(), 1u);
  expect_parity(engine, "net");
  EXPECT_EQ(engine.metrics().replica_lane_failures.value(), 0u);
}

TEST(Replica, ReclamationRemapResyncsLanes) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig base = config::build_ospf_network(t);

  SessionOptions sopts;
  sopts.replicas = 1;
  sopts.verifier.reclamation.enabled = true;  // eager: merge after every check
  Engine engine;
  ASSERT_TRUE(engine.call(open_request(1, "net", "ring", 4, base, sopts)).ok);

  // Register extra /24s then withdraw them: the withdrawal leaves atoms
  // that split for no live prefix, which the eager reclaimer merges away —
  // producing an EcRemap, which must resync (not delta-replay) the lane.
  config::NetworkConfig widened = base;
  auto& routes = widened.devices.at("r1").static_routes;
  for (unsigned i = 0; i < 4; ++i) {
    routes.push_back({net::Ipv4Prefix{net::Ipv4Addr{203, 0, static_cast<std::uint8_t>(i), 0},
                                      24},
                      config::kNullInterface});
  }
  ASSERT_TRUE(engine.call(propose_request(2, "net", widened)).ok);
  ASSERT_TRUE(engine.call(verb_request(3, "net", Verb::kCommit)).ok);
  expect_parity(engine, "net");

  ASSERT_TRUE(engine.call(propose_request(4, "net", base)).ok);
  ASSERT_TRUE(engine.call(verb_request(5, "net", Verb::kCommit)).ok);
  engine.drain();
  EXPECT_GE(engine.metrics().replica_resyncs.value(), 1u);
  expect_parity(engine, "net");
  EXPECT_EQ(engine.metrics().replica_lane_failures.value(), 0u);
}

TEST(Replica, BacklogSquashResyncsLaggingLaneAndKeepsParity) {
  const topo::Topology t = topo::make_ring(6);
  const config::NetworkConfig base = config::build_ospf_network(t);

  SessionOptions sopts;
  sopts.replicas = 1;
  EngineOptions opts;
  opts.lane_resync_backlog = 2;  // squash after two pending deltas
  Engine engine(opts);
  ASSERT_TRUE(engine.call(open_request(1, "net", "ring", 6, base, sopts)).ok);

  // Catch-up is read-driven, so with no reads in flight the lane's backlog
  // grows one delta per mutation until the squash threshold collapses it
  // into a snapshot resync.
  for (unsigned link = 0; link < 4; ++link) {
    config::NetworkConfig cfg = base;
    config::fail_link(cfg, t, link);
    ASSERT_TRUE(engine.call(propose_request(10 + link, "net", cfg)).ok);
  }
  engine.drain();
  EXPECT_GE(engine.metrics().replica_squashes.value(), 1u);

  // The first read after the squash answers from the snapshot — and must
  // still be byte-identical to the primary.
  expect_parity(engine, "net");
  EXPECT_EQ(engine.metrics().replica_lane_failures.value(), 0u);
}

TEST(Replica, ParseRejectsMoreThanMaxReplicas) {
  const std::string line =
      R"({"id":1,"op":"open","session":"s","topology":{"kind":"ring","n":4},)"
      R"("config":"x","replicas":17})";
  EXPECT_THROW(parse_request(line), ProtocolError);
  const std::string ok_line =
      R"({"id":1,"op":"open","session":"s","topology":{"kind":"ring","n":4},)"
      R"("config":"x","replicas":16})";
  EXPECT_EQ(parse_request(ok_line).options.replicas, 16u);
}

TEST(Replica, RejectOnFullAnswersBackpressure) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);

  EngineOptions opts;
  opts.queue_capacity = 1;
  opts.reject_on_full = true;
  Engine engine(opts);

  engine.pause();  // nothing is claimed: the queue fills deterministically
  std::vector<Response> responses(3);
  engine.submit(open_request(1, "net", "ring", 4, cfg),
                [&](Response r) { responses[0] = std::move(r); });
  // Queue is now at capacity 1: the next submit must be rejected
  // immediately on the calling thread, not block.
  Response rejected;
  engine.submit(verb_request(2, "net", Verb::kCommit),
                [&](Response r) { rejected = std::move(r); });
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.error.find("backpressure"), std::string::npos) << rejected.error;
  engine.resume();
  engine.drain();
  EXPECT_TRUE(responses[0].ok);
  EXPECT_GE(engine.metrics().rejected_total.value(), 1u);
}

}  // namespace
}  // namespace rcfg::service
