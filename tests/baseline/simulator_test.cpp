// Direct unit tests of the from-scratch baseline simulator (most of its
// coverage is differential, via tests/routing/); these pin down behaviours
// the differential tests would mask if both sides drifted together.

#include "baseline/simulator.h"

#include <gtest/gtest.h>

#include "config/builders.h"
#include "topo/generators.h"

namespace rcfg::baseline {
namespace {

using routing::FibAction;
using routing::FibEntry;

const FibEntry* find_row(const topo::Topology& t, const dd::ZSet<FibEntry>& fib,
                         const char* node, net::Ipv4Prefix prefix) {
  const topo::NodeId n = t.find_node(node);
  for (const auto& [e, w] : fib) {
    if (e.node == n && e.prefix == prefix) return &e;
  }
  return nullptr;
}

TEST(Baseline, OspfCostsSteerAwayFromExpensiveArc) {
  // Square ring, direct arc r0->r1 costs 10, detour r0->r3->r2->r1 costs 3.
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  config::set_ospf_cost(cfg, "r0", "to-r1", 10);

  const SimulationResult sim = simulate(t, cfg);
  const FibEntry* row = find_row(t, sim.fib, "r0", config::host_prefix(t.find_node("r1")));
  ASSERT_NE(row, nullptr);
  ASSERT_EQ(row->out_ifaces.size(), 1u);
  EXPECT_EQ(row->out_ifaces[0], t.find_interface(t.find_node("r0"), "to-r3"));
}

TEST(Baseline, OspfEcmpKeepsEveryMinimumCostEgress) {
  const topo::Topology t = topo::make_fat_tree(4);
  const SimulationResult sim = simulate(t, config::build_ospf_network(t));
  const FibEntry* row =
      find_row(t, sim.fib, "edge0-0", config::host_prefix(t.find_node("edge1-0")));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->out_ifaces.size(), 2u);
}

TEST(Baseline, BgpRoundsScaleWithDiameter) {
  const topo::Topology ring = topo::make_ring(8);
  const SimulationResult sim = simulate(ring, config::build_bgp_network(ring));
  // Diameter 4: adverts need ~diameter+1 rounds to stabilize.
  EXPECT_GE(sim.bgp_rounds, 4u);
  EXPECT_LE(sim.bgp_rounds, 8u);
}

TEST(Baseline, RedistributionRoundsWithoutRedistributionIsOne) {
  const topo::Topology t = topo::make_ring(4);
  const SimulationResult sim = simulate(t, config::build_ospf_network(t));
  EXPECT_EQ(sim.redistribution_rounds, 1u);
}

TEST(Baseline, AnycastPicksNearestOrigin) {
  // The same prefix originated at both ends of a chain: each node routes to
  // the closer origin (anycast), the middle node keeps both (ECMP tie).
  const topo::Topology t = topo::make_grid(5, 1);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  const auto anycast = *net::Ipv4Prefix::parse("198.51.100.0/24");
  for (const char* host : {"n0-0", "n4-0"}) {
    auto& dev = cfg.devices.at(host);
    config::InterfaceConfig stub;
    stub.name = "anycast0";
    stub.address = anycast;
    stub.ospf_area = 0;
    stub.ospf_passive = true;
    dev.interfaces.push_back(stub);
  }

  const SimulationResult sim = simulate(t, cfg);
  const FibEntry* near_left = find_row(t, sim.fib, "n1-0", anycast);
  ASSERT_NE(near_left, nullptr);
  EXPECT_EQ(near_left->out_ifaces[0], t.find_interface(t.find_node("n1-0"), "to-n0-0"));

  const FibEntry* middle = find_row(t, sim.fib, "n2-0", anycast);
  ASSERT_NE(middle, nullptr);
  EXPECT_EQ(middle->out_ifaces.size(), 2u);  // equal distance both ways
}

TEST(Baseline, RipHorizonDropsFarRoutes) {
  const topo::Topology t = topo::make_grid(20, 1);
  const SimulationResult sim = simulate(t, config::build_rip_network(t));
  const auto p0 = config::host_prefix(t.find_node("n0-0"));
  EXPECT_NE(find_row(t, sim.fib, "n14-0", p0), nullptr);
  EXPECT_EQ(find_row(t, sim.fib, "n15-0", p0), nullptr);
}

TEST(Baseline, StaticDistanceBreaksTies) {
  // Two static routes for the same prefix with different admin distances:
  // the lower distance wins the FIB.
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  const auto p = *net::Ipv4Prefix::parse("203.0.113.0/24");
  cfg.devices.at("r0").static_routes.push_back({p, "to-r1", 5});
  cfg.devices.at("r0").static_routes.push_back({p, "to-r2", 3});

  const SimulationResult sim = simulate(t, cfg);
  const FibEntry* row = find_row(t, sim.fib, "r0", p);
  ASSERT_NE(row, nullptr);
  ASSERT_EQ(row->out_ifaces.size(), 1u);
  EXPECT_EQ(row->out_ifaces[0], t.find_interface(t.find_node("r0"), "to-r2"));
}

TEST(Baseline, SimulateFactsMatchesSimulate) {
  const topo::Topology t = topo::make_fat_tree(4);
  const config::NetworkConfig cfg = config::build_bgp_network(t);
  const SimulationResult a = simulate(t, cfg);
  const SimulationResult b = simulate_facts(t, routing::compile_facts(t, cfg));
  EXPECT_TRUE(a.fib == b.fib);
  EXPECT_TRUE(a.bgp_best == b.bgp_best);
}

}  // namespace
}  // namespace rcfg::baseline
