#include "topo/symmetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "topo/generators.h"

namespace rcfg::topo {
namespace {

TEST(Symmetry, RecognizesFatTreesOnly) {
  EXPECT_FALSE(Symmetry::fat_tree_pods(make_fat_tree(4)).trivial());
  EXPECT_FALSE(Symmetry::fat_tree_pods(make_fat_tree(6)).trivial());
  EXPECT_TRUE(Symmetry::fat_tree_pods(make_grid(3, 3)).trivial());
  EXPECT_TRUE(Symmetry::fat_tree_pods(make_ring(8)).trivial());
  EXPECT_TRUE(Symmetry::fat_tree_pods(make_full_mesh(5)).trivial());
  EXPECT_TRUE(Symmetry::none().trivial());
}

TEST(Symmetry, PodsAndLinkClassification) {
  const Topology t = make_fat_tree(4);
  const Symmetry s = Symmetry::fat_tree_pods(t);
  ASSERT_EQ(s.pods(), 4u);
  // Every link belongs to exactly one pod; pods hold equal link counts.
  std::vector<unsigned> per_pod(4, 0);
  for (LinkId l = 0; l < t.link_count(); ++l) {
    const int p = s.pod_of_link(l);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 4);
    ++per_pod[p];
  }
  for (const unsigned c : per_pod) EXPECT_EQ(c, t.link_count() / 4);
  // Node classification: cores have no pod.
  for (NodeId n = 0; n < t.node_count(); ++n) {
    const bool core = t.node(n).name.rfind("core", 0) == 0;
    EXPECT_EQ(s.pod_of_node(n) < 0, core) << t.node(n).name;
  }
}

/// An automorphism must preserve the wiring: the image of every link joins
/// the images of its endpoints, through the images of its interfaces.
void expect_valid_automorphism(const Topology& t, const Automorphism& a) {
  ASSERT_EQ(a.node.size(), t.node_count());
  ASSERT_EQ(a.iface.size(), t.iface_count());
  ASSERT_EQ(a.link.size(), t.link_count());
  // Permutations.
  for (const auto& v : {a.link}) {
    std::set<LinkId> seen(v.begin(), v.end());
    EXPECT_EQ(seen.size(), v.size());
  }
  for (LinkId l = 0; l < t.link_count(); ++l) {
    const Link& src = t.link(l);
    const Link& dst = t.link(a.link[l]);
    const std::set<NodeId> want = {a.node[src.a], a.node[src.b]};
    EXPECT_EQ(want, (std::set<NodeId>{dst.a, dst.b}));
    const std::set<IfaceId> want_if = {a.iface[src.a_iface], a.iface[src.b_iface]};
    EXPECT_EQ(want_if, (std::set<IfaceId>{dst.a_iface, dst.b_iface}));
    // Interface/node consistency.
    EXPECT_EQ(t.iface(a.iface[src.a_iface]).node, a.node[src.a]);
    EXPECT_EQ(t.iface(a.iface[src.b_iface]).node, a.node[src.b]);
  }
}

TEST(Symmetry, PodSwapIsAValidAutomorphism) {
  const Topology t = make_fat_tree(4);
  const Symmetry s = Symmetry::fat_tree_pods(t);
  for (unsigned p = 0; p < 4; ++p) {
    for (unsigned q = p + 1; q < 4; ++q) {
      expect_valid_automorphism(t, s.pod_swap(p, q));
    }
  }
  // Swapping preserves node names up to the pod index.
  const Automorphism a = s.pod_swap(0, 2);
  EXPECT_EQ(t.node(a.node[t.find_node("edge0-1")]).name, "edge2-1");
  EXPECT_EQ(t.node(a.node[t.find_node("agg2-0")]).name, "agg0-0");
  EXPECT_EQ(t.node(a.node[t.find_node("agg1-1")]).name, "agg1-1");
  EXPECT_EQ(t.node(a.node[t.find_node("core3")]).name, "core3");
}

TEST(Symmetry, CanonicalIsOrbitMinimumBruteForce) {
  const Topology t = make_fat_tree(4);
  const Symmetry s = Symmetry::fat_tree_pods(t);
  // Brute force: every pod permutation of S_4 via repeated next_permutation.
  std::vector<unsigned> perm(4);
  std::iota(perm.begin(), perm.end(), 0u);
  std::vector<std::vector<unsigned>> perms;
  do {
    perms.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));

  const std::vector<std::vector<LinkId>> cases = {
      {0}, {17}, {31}, {0, 8}, {3, 19, 30}, {5, 6, 7, 21}};
  for (const std::vector<LinkId>& links : cases) {
    std::vector<LinkId> best = links;
    for (const std::vector<unsigned>& pm : perms) {
      const Automorphism a = s.automorphism(pm);
      std::vector<LinkId> image;
      for (const LinkId l : links) image.push_back(a.link[l]);
      std::sort(image.begin(), image.end());
      best = std::min(best, image);
    }
    EXPECT_EQ(s.canonical(links), best);
    EXPECT_EQ(s.is_canonical(links), links == best);
    // The orbit contains the canonical member first, and only images.
    const Symmetry::Orbit orbit = s.orbit(links);
    ASSERT_FALSE(orbit.images.empty());
    EXPECT_EQ(orbit.images.front().links, s.canonical(links));
    for (const auto& img : orbit.images) {
      EXPECT_EQ(s.canonical(img.links), orbit.images.front().links);
    }
  }
}

TEST(Symmetry, OrbitSizesOnSingleLinks) {
  const Topology t = make_fat_tree(4);
  const Symmetry s = Symmetry::fat_tree_pods(t);
  // A single link's orbit visits the same role in all 4 pods.
  const Symmetry::Orbit o = s.orbit({0});
  EXPECT_EQ(o.images.size(), 4u);
  // Two links in distinct pods: orbit has 4*3 = 12 ordered pod choices but
  // images may coincide only when roles coincide; distinct roles => 12.
  const Symmetry::Orbit o2 = s.orbit(s.canonical({0, 9}));
  EXPECT_EQ(o2.images.size(), 12u);
}

TEST(Symmetry, PodClassesRestrictTheGroup) {
  const Topology t = make_fat_tree(4);
  Symmetry s = Symmetry::fat_tree_pods(t);
  // Pods {0,1} and {2,3} in separate classes: link 0 (pod 0) can only
  // reach its pod-1 sibling.
  s.set_pod_classes({0, 0, 1, 1});
  EXPECT_EQ(s.orbit({0}).images.size(), 2u);
  // Singleton classes admit only the identity.
  s.set_pod_classes({0, 1, 2, 3});
  EXPECT_TRUE(s.trivial());
  EXPECT_EQ(s.orbit({0}).images.size(), 1u);
  EXPECT_TRUE(s.is_canonical({17}));
}

TEST(Symmetry, ReplayMapsLostPairsAcrossPods) {
  // The pod_map attached to each orbit image must be usable to relabel
  // node-level facts: check it maps pod-0 nodes onto the image pod.
  const Topology t = make_fat_tree(6);
  const Symmetry s = Symmetry::fat_tree_pods(t);
  const std::vector<LinkId> rep = s.canonical({2});
  const Symmetry::Orbit o = s.orbit(rep);
  ASSERT_EQ(o.images.size(), 6u);
  for (const auto& img : o.images) {
    const Automorphism a = s.automorphism(img.pod_map);
    expect_valid_automorphism(t, a);
    const int rep_pod = s.pod_of_link(rep.front());
    const int img_pod = s.pod_of_link(img.links.front());
    for (NodeId n = 0; n < t.node_count(); ++n) {
      if (s.pod_of_node(n) == rep_pod) {
        EXPECT_EQ(s.pod_of_node(a.node[n]), img_pod);
      }
    }
  }
}

}  // namespace
}  // namespace rcfg::topo
