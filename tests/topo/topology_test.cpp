#include "topo/topology.h"

#include <gtest/gtest.h>

namespace rcfg::topo {
namespace {

TEST(Topology, AddNodesAndLinks) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const LinkId l = t.connect(a, b);

  EXPECT_EQ(t.node_count(), 2u);
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(t.iface_count(), 2u);
  EXPECT_EQ(t.peer(l, a), b);
  EXPECT_EQ(t.peer(l, b), a);
  EXPECT_EQ(t.find_node("a"), a);
  EXPECT_EQ(t.find_node("missing"), kInvalidNode);
}

TEST(Topology, DuplicateNodeNameThrows) {
  Topology t;
  t.add_node("a");
  EXPECT_THROW(t.add_node("a"), std::invalid_argument);
}

TEST(Topology, InterfaceNaming) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  t.connect(a, b);
  EXPECT_NE(t.find_interface(a, "to-b"), kInvalidIface);
  EXPECT_NE(t.find_interface(b, "to-a"), kInvalidIface);

  // A parallel link gets a suffixed name.
  t.connect(a, b);
  EXPECT_NE(t.find_interface(a, "to-b.1"), kInvalidIface);
}

TEST(Topology, SelfLoopRejected) {
  Topology t;
  const NodeId a = t.add_node("a");
  const IfaceId i1 = t.add_interface(a, "x");
  const IfaceId i2 = t.add_interface(a, "y");
  EXPECT_THROW(t.add_link(i1, i2), std::invalid_argument);
}

TEST(Topology, DoubleWiringRejected) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const NodeId c = t.add_node("c");
  const IfaceId ia = t.add_interface(a, "x");
  const IfaceId ib = t.add_interface(b, "x");
  const IfaceId ic = t.add_interface(c, "x");
  t.add_link(ia, ib);
  EXPECT_THROW(t.add_link(ia, ic), std::invalid_argument);
}

TEST(Topology, Adjacencies) {
  Topology t;
  const NodeId hub = t.add_node("hub");
  const NodeId s1 = t.add_node("s1");
  const NodeId s2 = t.add_node("s2");
  const NodeId s3 = t.add_node("s3");
  t.connect(hub, s1);
  t.connect(hub, s2);
  t.connect(hub, s3);

  const auto adj = t.adjacencies(hub);
  ASSERT_EQ(adj.size(), 3u);
  EXPECT_EQ(t.adjacencies(s1).size(), 1u);
  EXPECT_EQ(adj[0].peer, s1);
  EXPECT_EQ(adj[1].peer, s2);
  EXPECT_EQ(adj[2].peer, s3);
}

TEST(Topology, RemoteIface) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  t.connect(a, b);
  const IfaceId ia = t.find_interface(a, "to-b");
  const IfaceId ib = t.find_interface(b, "to-a");
  EXPECT_EQ(t.remote_iface(ia), ib);
  EXPECT_EQ(t.remote_iface(ib), ia);

  const IfaceId lone = t.add_interface(a, "unwired");
  EXPECT_EQ(t.remote_iface(lone), kInvalidIface);
}

TEST(Topology, DotExportMentionsAllNodes) {
  Topology t;
  const NodeId a = t.add_node("alpha");
  const NodeId b = t.add_node("beta");
  t.connect(a, b);
  const std::string dot = t.to_dot();
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("beta"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
}

}  // namespace
}  // namespace rcfg::topo
