#include "topo/generators.h"

#include <gtest/gtest.h>

#include <functional>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace rcfg::topo {
namespace {

/// BFS connectivity check.
bool is_connected(const Topology& t) {
  if (t.node_count() == 0) return true;
  std::vector<bool> seen(t.node_count(), false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  std::size_t count = 1;
  while (!q.empty()) {
    const NodeId n = q.front();
    q.pop();
    for (const auto& adj : t.adjacencies(n)) {
      if (!seen[adj.peer]) {
        seen[adj.peer] = true;
        ++count;
        q.push(adj.peer);
      }
    }
  }
  return count == t.node_count();
}

class FatTreeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FatTreeTest, ShapeMatchesFormula) {
  const unsigned k = GetParam();
  const Topology t = make_fat_tree(k);
  const FatTreeShape shape{k};
  EXPECT_EQ(t.node_count(), shape.nodes());
  EXPECT_EQ(t.link_count(), shape.links());
  EXPECT_TRUE(is_connected(t));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FatTreeTest, ::testing::Values(2u, 4u, 6u, 8u, 12u));

TEST(FatTree, PaperScaleIs180Nodes864Links) {
  // The paper's evaluation topology (§5): fat tree with 180 nodes, 864 links.
  const Topology t = make_fat_tree(12);
  EXPECT_EQ(t.node_count(), 180u);
  EXPECT_EQ(t.link_count(), 864u);
}

TEST(FatTree, DegreesAreUniform) {
  const unsigned k = 6;
  const Topology t = make_fat_tree(k);
  for (NodeId n = 0; n < t.node_count(); ++n) {
    const auto& name = t.node(n).name;
    const std::size_t degree = t.adjacencies(n).size();
    if (name.starts_with("core")) {
      EXPECT_EQ(degree, k) << name;
    } else if (name.starts_with("agg")) {
      EXPECT_EQ(degree, k) << name;
    } else {
      EXPECT_EQ(degree, k / 2) << name;  // edge switches (no hosts modeled)
    }
  }
}

TEST(FatTree, OddKRejected) {
  EXPECT_THROW(make_fat_tree(3), std::invalid_argument);
  EXPECT_THROW(make_fat_tree(0), std::invalid_argument);
}

TEST(Grid, ShapeAndConnectivity) {
  const Topology t = make_grid(4, 3);
  EXPECT_EQ(t.node_count(), 12u);
  // links: horizontal 3*3 + vertical 4*2 = 17
  EXPECT_EQ(t.link_count(), 17u);
  EXPECT_TRUE(is_connected(t));
}

TEST(Grid, SingleCell) {
  const Topology t = make_grid(1, 1);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.link_count(), 0u);
}

TEST(Ring, ShapeAndConnectivity) {
  const Topology t = make_ring(5);
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.link_count(), 5u);
  EXPECT_TRUE(is_connected(t));
  for (NodeId n = 0; n < 5; ++n) EXPECT_EQ(t.adjacencies(n).size(), 2u);
}

TEST(FullMesh, Shape) {
  const Topology t = make_full_mesh(5);
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.link_count(), 10u);
  EXPECT_TRUE(is_connected(t));
}

TEST(RandomConnected, AlwaysConnectedWithExactLinkCount) {
  core::Rng rng{99};
  for (int trial = 0; trial < 10; ++trial) {
    const unsigned n = 20;
    const unsigned links = 35;
    const Topology t = make_random_connected(n, links, rng);
    EXPECT_EQ(t.node_count(), n);
    EXPECT_EQ(t.link_count(), links);
    EXPECT_TRUE(is_connected(t));
  }
}

TEST(RandomConnected, RejectsTooFewLinks) {
  core::Rng rng{1};
  EXPECT_THROW(make_random_connected(10, 8, rng), std::invalid_argument);
}

/// All links must be simple: the generator is allowed to fill the graph up
/// to the full-mesh capacity, but one more used to silently emit parallel
/// links (which the sweep's link normalization assumes cannot exist).
TEST(RandomConnected, RejectsCountsBeyondSimpleCapacity) {
  core::Rng rng{7};
  const Topology full = make_random_connected(4, 6, rng);  // K4: exactly the cap
  EXPECT_EQ(full.link_count(), 6u);
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (LinkId l = 0; l < full.link_count(); ++l) {
    auto a = full.link(l).a, b = full.link(l).b;
    if (a > b) std::swap(a, b);
    EXPECT_TRUE(pairs.emplace(a, b).second) << "parallel link " << l;
  }
  EXPECT_THROW(make_random_connected(4, 7, rng), std::invalid_argument);
}

// --- FatTreeShape validation (must agree with make_fat_tree) ---------------

TEST(FatTreeShape, RejectsWhatTheGeneratorRejects) {
  EXPECT_THROW(FatTreeShape{0}, std::invalid_argument);
  EXPECT_THROW(FatTreeShape{3}, std::invalid_argument);
  EXPECT_THROW(FatTreeShape{7}, std::invalid_argument);
  EXPECT_NO_THROW(FatTreeShape{2});
}

TEST(FatTreeShape, CountsComputedIn64Bit) {
  // k=2000: links = k^3/2 = 4e9, which silently overflowed 32-bit math.
  const FatTreeShape shape{2000};
  EXPECT_EQ(shape.nodes(), 5'000'000ull);
  EXPECT_EQ(shape.links(), 4'000'000'000ull);
  EXPECT_EQ(shape.cores(), 1'000'000ull);
}

// --- torus -----------------------------------------------------------------

TEST(Torus, Shape2D) {
  const Topology t = make_torus(4, 3);
  const TorusShape shape{{4, 3}};
  EXPECT_EQ(t.node_count(), shape.nodes());
  EXPECT_EQ(t.link_count(), shape.links());
  EXPECT_EQ(shape.nodes(), 12u);
  EXPECT_EQ(shape.links(), 24u);  // 3 lines of 4 (wrap) + 4 lines of 3 (wrap)
  EXPECT_TRUE(is_connected(t));
}

TEST(Torus, Shape3D) {
  const Topology t = make_torus(3, 3, 3);
  const TorusShape shape{{3, 3, 3}};
  EXPECT_EQ(t.node_count(), 27u);
  EXPECT_EQ(t.link_count(), 81u);
  EXPECT_EQ(t.link_count(), shape.links());
  EXPECT_TRUE(is_connected(t));
  for (NodeId n = 0; n < t.node_count(); ++n) {
    EXPECT_EQ(t.adjacencies(n).size(), shape.degree()) << t.node(n).name;
  }
}

TEST(Torus, ParameterSweepHoldsFormulasAndDegrees) {
  for (unsigned w = 2; w <= 5; ++w) {
    for (unsigned h = 2; h <= 5; ++h) {
      const Topology t = make_torus(w, h);
      const TorusShape shape{{w, h}};
      ASSERT_EQ(t.node_count(), shape.nodes()) << w << "x" << h;
      ASSERT_EQ(t.link_count(), shape.links()) << w << "x" << h;
      ASSERT_TRUE(is_connected(t)) << w << "x" << h;
      for (NodeId n = 0; n < t.node_count(); ++n) {
        ASSERT_EQ(t.adjacencies(n).size(), shape.degree()) << w << "x" << h;
      }
    }
  }
}

TEST(Torus, MinimalExtentAvoidsParallelLinks) {
  // 2x2: every wrap link would duplicate the path link, so it's a plain
  // 4-cycle (simple graph), not a multigraph.
  const Topology t = make_torus(2, 2);
  EXPECT_EQ(t.node_count(), 4u);
  EXPECT_EQ(t.link_count(), 4u);
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (LinkId l = 0; l < t.link_count(); ++l) {
    auto a = t.link(l).a, b = t.link(l).b;
    if (a > b) std::swap(a, b);
    EXPECT_TRUE(pairs.emplace(a, b).second);
  }
}

TEST(Torus, NameConventionAndValidation) {
  const Topology t2 = make_torus(3, 2);
  EXPECT_NE(t2.find_node("ts0-0"), kInvalidNode);
  EXPECT_NE(t2.find_node("ts2-1"), kInvalidNode);
  EXPECT_EQ(t2.find_node("ts3-0"), kInvalidNode);
  const Topology t3 = make_torus(2, 3, 4);
  EXPECT_NE(t3.find_node("ts0-0-0"), kInvalidNode);
  EXPECT_NE(t3.find_node("ts1-2-3"), kInvalidNode);
  EXPECT_THROW(make_torus(1, 5), std::invalid_argument);
  EXPECT_THROW(make_torus(5, 0), std::invalid_argument);
  EXPECT_THROW(make_torus(1, 2, 2), std::invalid_argument);
  EXPECT_THROW((TorusShape{{4}}), std::invalid_argument);
  EXPECT_THROW((TorusShape{{2, 2, 2, 2}}), std::invalid_argument);
}

// --- dragonfly -------------------------------------------------------------

DragonflyParams df(unsigned g, unsigned a, unsigned h, unsigned p) {
  DragonflyParams params;
  params.groups = g;
  params.routers_per_group = a;
  params.global_per_router = h;
  params.terminals_per_router = p;
  return params;
}

TEST(Dragonfly, ShapeAndConnectivity) {
  const DragonflyParams p = df(5, 4, 2, 2);
  const Topology t = make_dragonfly(p);
  const DragonflyShape shape{p};
  EXPECT_EQ(shape.routers(), 20u);
  EXPECT_EQ(shape.terminals(), 40u);
  EXPECT_EQ(t.node_count(), shape.nodes());
  EXPECT_EQ(t.link_count(), shape.links());
  EXPECT_EQ(shape.links(), 5u * 6 + 10 + 40);
  EXPECT_TRUE(is_connected(t));
}

TEST(Dragonfly, DegreesAndNameConvention) {
  const DragonflyParams p = df(5, 4, 2, 2);
  const Topology t = make_dragonfly(p);
  // Every group owns g-1 = 4 global links spread round-robin over a = 4
  // routers, so every router carries exactly one: degree = (a-1) intra +
  // p terminals + 1 global.
  for (NodeId n = 0; n < t.node_count(); ++n) {
    const auto& name = t.node(n).name;
    if (name.starts_with("dfr")) {
      EXPECT_EQ(t.adjacencies(n).size(), 3u + 2 + 1) << name;
    } else {
      ASSERT_TRUE(name.starts_with("dft")) << name;
      EXPECT_EQ(t.adjacencies(n).size(), 1u) << name;
    }
  }
  EXPECT_NE(t.find_node("dfr0-0"), kInvalidNode);
  EXPECT_NE(t.find_node("dfr4-3"), kInvalidNode);
  EXPECT_NE(t.find_node("dft4-3-1"), kInvalidNode);
  EXPECT_EQ(t.find_node("dfr5-0"), kInvalidNode);
}

TEST(Dragonfly, GlobalDegreeNeverExceedsParameter) {
  for (unsigned g = 2; g <= 7; ++g) {
    for (unsigned a = 1; a <= 4; ++a) {
      for (unsigned h = 1; h <= 3; ++h) {
        if (g - 1 > a * h) continue;  // rejected by validation, tested below
        const Topology t = make_dragonfly(df(g, a, h, 1));
        const DragonflyShape shape{df(g, a, h, 1)};
        ASSERT_EQ(t.link_count(), shape.links());
        ASSERT_TRUE(is_connected(t));
        for (NodeId n = 0; n < t.node_count(); ++n) {
          if (!t.node(n).name.starts_with("dfr")) continue;
          const std::string group =
              t.node(n).name.substr(3, t.node(n).name.find('-') - 3);
          unsigned global = 0;
          for (const auto& adj : t.adjacencies(n)) {
            const auto& peer = t.node(adj.peer).name;
            if (peer.starts_with("dfr") &&
                peer.substr(3, peer.find('-') - 3) != group) {
              ++global;
            }
          }
          ASSERT_LE(global, h) << t.node(n).name;
        }
      }
    }
  }
}

TEST(Dragonfly, MinimalAndInvalidParameters) {
  const Topology tiny = make_dragonfly(df(2, 1, 1, 0));
  EXPECT_EQ(tiny.node_count(), 2u);
  EXPECT_EQ(tiny.link_count(), 1u);  // just the one global link
  EXPECT_THROW(make_dragonfly(df(1, 4, 2, 2)), std::invalid_argument);
  EXPECT_THROW(make_dragonfly(df(5, 0, 2, 2)), std::invalid_argument);
  EXPECT_THROW(make_dragonfly(df(5, 4, 0, 2)), std::invalid_argument);
  // Global capacity: g-1 must fit in a*h.
  EXPECT_THROW(make_dragonfly(df(10, 2, 2, 0)), std::invalid_argument);
}

// --- WAN -------------------------------------------------------------------

TEST(Wan, ShapeCostsAndNames) {
  WanParams p;
  p.nodes = 20;
  p.links = 40;
  p.min_cost = 5;
  p.max_cost = 9;
  core::Rng rng{42};
  const WeightedTopology wan = make_wan(p, rng);
  EXPECT_EQ(wan.topo.node_count(), 20u);
  EXPECT_EQ(wan.topo.link_count(), 40u);
  ASSERT_EQ(wan.link_cost.size(), wan.topo.link_count());
  EXPECT_TRUE(is_connected(wan.topo));
  for (const std::uint32_t c : wan.link_cost) {
    EXPECT_GE(c, 5u);
    EXPECT_LE(c, 9u);
  }
  EXPECT_NE(wan.topo.find_node("w0"), kInvalidNode);
  EXPECT_NE(wan.topo.find_node("w19"), kInvalidNode);
  EXPECT_EQ(wan.topo.find_node("w20"), kInvalidNode);
}

TEST(Wan, DeterministicInTheSeed) {
  WanParams p;
  p.nodes = 12;
  p.links = 20;
  core::Rng a{7}, b{7};
  const WeightedTopology x = make_wan(p, a);
  const WeightedTopology y = make_wan(p, b);
  EXPECT_EQ(x.link_cost, y.link_cost);
  ASSERT_EQ(x.topo.link_count(), y.topo.link_count());
  for (LinkId l = 0; l < x.topo.link_count(); ++l) {
    EXPECT_EQ(x.topo.link(l).a, y.topo.link(l).a);
    EXPECT_EQ(x.topo.link(l).b, y.topo.link(l).b);
  }
}

TEST(Wan, RejectsInvalidParameters) {
  core::Rng rng{3};
  WanParams p;
  p.nodes = 5;
  p.links = 11;  // simple capacity is 10
  EXPECT_THROW(make_wan(p, rng), std::invalid_argument);
  p.links = 8;
  p.min_cost = 0;
  EXPECT_THROW(make_wan(p, rng), std::invalid_argument);
  p.min_cost = 10;
  p.max_cost = 9;
  EXPECT_THROW(make_wan(p, rng), std::invalid_argument);
  p.min_cost = 1;
  p.max_cost = 70000;
  EXPECT_THROW(make_wan(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace rcfg::topo
