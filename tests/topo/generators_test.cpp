#include "topo/generators.h"

#include <gtest/gtest.h>

#include <functional>
#include <queue>
#include <vector>

namespace rcfg::topo {
namespace {

/// BFS connectivity check.
bool is_connected(const Topology& t) {
  if (t.node_count() == 0) return true;
  std::vector<bool> seen(t.node_count(), false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  std::size_t count = 1;
  while (!q.empty()) {
    const NodeId n = q.front();
    q.pop();
    for (const auto& adj : t.adjacencies(n)) {
      if (!seen[adj.peer]) {
        seen[adj.peer] = true;
        ++count;
        q.push(adj.peer);
      }
    }
  }
  return count == t.node_count();
}

class FatTreeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FatTreeTest, ShapeMatchesFormula) {
  const unsigned k = GetParam();
  const Topology t = make_fat_tree(k);
  const FatTreeShape shape{k};
  EXPECT_EQ(t.node_count(), shape.nodes());
  EXPECT_EQ(t.link_count(), shape.links());
  EXPECT_TRUE(is_connected(t));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FatTreeTest, ::testing::Values(2u, 4u, 6u, 8u, 12u));

TEST(FatTree, PaperScaleIs180Nodes864Links) {
  // The paper's evaluation topology (§5): fat tree with 180 nodes, 864 links.
  const Topology t = make_fat_tree(12);
  EXPECT_EQ(t.node_count(), 180u);
  EXPECT_EQ(t.link_count(), 864u);
}

TEST(FatTree, DegreesAreUniform) {
  const unsigned k = 6;
  const Topology t = make_fat_tree(k);
  for (NodeId n = 0; n < t.node_count(); ++n) {
    const auto& name = t.node(n).name;
    const std::size_t degree = t.adjacencies(n).size();
    if (name.starts_with("core")) {
      EXPECT_EQ(degree, k) << name;
    } else if (name.starts_with("agg")) {
      EXPECT_EQ(degree, k) << name;
    } else {
      EXPECT_EQ(degree, k / 2) << name;  // edge switches (no hosts modeled)
    }
  }
}

TEST(FatTree, OddKRejected) {
  EXPECT_THROW(make_fat_tree(3), std::invalid_argument);
  EXPECT_THROW(make_fat_tree(0), std::invalid_argument);
}

TEST(Grid, ShapeAndConnectivity) {
  const Topology t = make_grid(4, 3);
  EXPECT_EQ(t.node_count(), 12u);
  // links: horizontal 3*3 + vertical 4*2 = 17
  EXPECT_EQ(t.link_count(), 17u);
  EXPECT_TRUE(is_connected(t));
}

TEST(Grid, SingleCell) {
  const Topology t = make_grid(1, 1);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.link_count(), 0u);
}

TEST(Ring, ShapeAndConnectivity) {
  const Topology t = make_ring(5);
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.link_count(), 5u);
  EXPECT_TRUE(is_connected(t));
  for (NodeId n = 0; n < 5; ++n) EXPECT_EQ(t.adjacencies(n).size(), 2u);
}

TEST(FullMesh, Shape) {
  const Topology t = make_full_mesh(5);
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.link_count(), 10u);
  EXPECT_TRUE(is_connected(t));
}

TEST(RandomConnected, AlwaysConnectedWithExactLinkCount) {
  core::Rng rng{99};
  for (int trial = 0; trial < 10; ++trial) {
    const unsigned n = 20;
    const unsigned links = 35;
    const Topology t = make_random_connected(n, links, rng);
    EXPECT_EQ(t.node_count(), n);
    EXPECT_EQ(t.link_count(), links);
    EXPECT_TRUE(is_connected(t));
  }
}

TEST(RandomConnected, RejectsTooFewLinks) {
  core::Rng rng{1};
  EXPECT_THROW(make_random_connected(10, 8, rng), std::invalid_argument);
}

}  // namespace
}  // namespace rcfg::topo
