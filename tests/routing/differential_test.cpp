// The central correctness property of INCV (and of this reproduction):
//
//   (1) engine-from-scratch  ==  baseline-from-scratch   (semantic agreement)
//   (2) engine-incremental   ==  engine-from-scratch     (incrementality)
//
// for arbitrary configurations and arbitrary change sequences. The baseline
// uses completely different algorithms (Dijkstra / synchronous path
// vector), so agreement pins down the propagation logic of both.

#include <gtest/gtest.h>

#include <string>

#include "baseline/simulator.h"
#include "config/builders.h"
#include "core/rng.h"
#include "routing/generator.h"
#include "topo/generators.h"

namespace rcfg::routing {
namespace {

std::string describe_difference(const dd::ZSet<FibEntry>& a, const dd::ZSet<FibEntry>& b) {
  std::string out;
  int shown = 0;
  for (const auto& [e, w] : a) {
    if (b.weight(e) != w && shown++ < 5) {
      out += "  only-in-A: " + to_string(e) + "\n";
    }
  }
  for (const auto& [e, w] : b) {
    if (a.weight(e) != w && shown++ < 10) {
      out += "  only-in-B: " + to_string(e) + "\n";
    }
  }
  return out;
}

void expect_fibs_equal(const dd::ZSet<FibEntry>& a, const dd::ZSet<FibEntry>& b,
                       const std::string& context) {
  EXPECT_TRUE(a == b) << context << "\n" << describe_difference(a, b);
}

void check_engine_vs_baseline(const topo::Topology& t, const config::NetworkConfig& cfg,
                              const std::string& context) {
  IncrementalGenerator gen(t);
  gen.apply(cfg);
  const baseline::SimulationResult sim = baseline::simulate(t, cfg);
  expect_fibs_equal(gen.fib(), sim.fib, context);
}

TEST(Differential, OspfTopologyZoo) {
  for (const auto& [name, t] : {
           std::pair<const char*, topo::Topology>{"ring5", topo::make_ring(5)},
           {"grid3x3", topo::make_grid(3, 3)},
           {"mesh4", topo::make_full_mesh(4)},
           {"fattree4", topo::make_fat_tree(4)},
       }) {
    check_engine_vs_baseline(t, config::build_ospf_network(t), std::string{"ospf/"} + name);
  }
}

TEST(Differential, BgpTopologyZoo) {
  for (const auto& [name, t] : {
           std::pair<const char*, topo::Topology>{"ring5", topo::make_ring(5)},
           {"grid3x3", topo::make_grid(3, 3)},
           {"mesh4", topo::make_full_mesh(4)},
           {"fattree4", topo::make_fat_tree(4)},
       }) {
    check_engine_vs_baseline(t, config::build_bgp_network(t), std::string{"bgp/"} + name);
  }
}

TEST(Differential, MixedProtocolsWithRedistribution) {
  // Half the grid speaks OSPF, half BGP; the border row redistributes both
  // ways. The two implementations must still agree exactly.
  const topo::Topology t = topo::make_grid(4, 2);
  config::NetworkConfig ospf = config::build_ospf_network(t);
  config::NetworkConfig bgp = config::build_bgp_network(t);

  config::NetworkConfig cfg;
  for (unsigned x = 0; x < 4; ++x) {
    for (unsigned y = 0; y < 2; ++y) {
      const std::string name = "n" + std::to_string(x) + "-" + std::to_string(y);
      if (x < 2) {
        cfg.devices[name] = ospf.devices.at(name);
      } else {
        cfg.devices[name] = bgp.devices.at(name);
      }
    }
  }
  // Border nodes x=2 run both: keep BGP, add OSPF on the westward link, and
  // redistribute in both directions.
  for (unsigned y = 0; y < 2; ++y) {
    const std::string name = "n2-" + std::to_string(y);
    const std::string west = "to-n1-" + std::to_string(y);
    config::DeviceConfig& dev = cfg.devices.at(name);
    dev.find_interface(west)->ospf_area = 0;
    dev.ospf.emplace();
    dev.ospf->redistribute.push_back({config::Redistribution::Source::kBgp, 0, std::nullopt});
    dev.bgp->redistribute.push_back({config::Redistribution::Source::kOspf, 0, std::nullopt});
  }

  check_engine_vs_baseline(t, cfg, "mixed-redistribution");
}

class ChangeSequenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ChangeSequenceTest, IncrementalMatchesScratchAndBaseline) {
  const std::string protocol = GetParam();
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = protocol == "ospf" ? config::build_ospf_network(t)
                                                 : config::build_bgp_network(t);

  IncrementalGenerator incremental(t);
  incremental.apply(cfg);

  core::Rng rng{protocol == "ospf" ? 11u : 22u};
  std::vector<topo::LinkId> failed;

  // Note on BGP change selection: arbitrary local-pref assignments across
  // many nodes can build dispute-wheel-like preference structures with
  // MULTIPLE legitimate converged states (the paper's §6 "route update
  // racing"), where incremental and from-scratch runs may both be correct
  // yet different. Differential testing therefore uses uniquely-convergent
  // changes: link failures/restores, OSPF costs, and (like the paper's LP
  // experiment) local-pref changes at a single fixed node.
  for (int step = 0; step < 12; ++step) {
    const double dice = rng.next_double();
    if (dice < 0.35) {
      const auto l = static_cast<topo::LinkId>(rng.next_below(t.link_count()));
      config::fail_link(cfg, t, l);
      failed.push_back(l);
    } else if (dice < 0.55 && !failed.empty()) {
      const auto idx = rng.next_below(failed.size());
      config::restore_link(cfg, t, failed[idx]);
      failed.erase(failed.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (protocol == "ospf") {
      const auto l = static_cast<topo::LinkId>(rng.next_below(t.link_count()));
      const topo::Link& lk = t.link(l);
      config::set_ospf_cost(cfg, t.node(lk.a).name, t.iface(lk.a_iface).name,
                            static_cast<std::uint32_t>(rng.next_in(1, 100)));
    } else {
      // LP change at one fixed node, alternating preference level.
      const topo::NodeId n = t.find_node("edge0-0");
      const auto adj = t.adjacencies(n);
      const auto& ifc = t.iface(adj[rng.next_below(adj.size())].iface).name;
      config::set_local_pref(cfg, "edge0-0", ifc,
                             rng.next_bool(0.5) ? 150u : config::kDefaultLocalPref);
    }

    incremental.apply(cfg);

    IncrementalGenerator scratch(t);
    scratch.apply(cfg);
    expect_fibs_equal(incremental.fib(), scratch.fib(),
                      "incremental-vs-scratch step " + std::to_string(step));

    const baseline::SimulationResult sim = baseline::simulate(t, cfg);
    expect_fibs_equal(incremental.fib(), sim.fib,
                      "incremental-vs-baseline step " + std::to_string(step));
    if (::testing::Test::HasFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, ChangeSequenceTest, ::testing::Values("ospf", "bgp"));

TEST(Differential, RandomTopologiesOspf) {
  core::Rng rng{5150};
  for (int trial = 0; trial < 5; ++trial) {
    const unsigned n = static_cast<unsigned>(rng.next_in(5, 14));
    const unsigned links = n - 1 + static_cast<unsigned>(rng.next_below(n));
    const topo::Topology t = topo::make_random_connected(n, links, rng);
    config::NetworkConfig cfg = config::build_ospf_network(t);
    // Randomize some link costs.
    for (topo::LinkId l = 0; l < t.link_count(); ++l) {
      if (rng.next_bool(0.4)) {
        const topo::Link& lk = t.link(l);
        config::set_ospf_cost(cfg, t.node(lk.a).name, t.iface(lk.a_iface).name,
                              static_cast<std::uint32_t>(rng.next_in(1, 20)));
      }
    }
    check_engine_vs_baseline(t, cfg, "random-ospf trial " + std::to_string(trial));
  }
}

TEST(Differential, RandomTopologiesBgp) {
  core::Rng rng{6174};
  for (int trial = 0; trial < 5; ++trial) {
    const unsigned n = static_cast<unsigned>(rng.next_in(5, 12));
    const unsigned links = n - 1 + static_cast<unsigned>(rng.next_below(n));
    const topo::Topology t = topo::make_random_connected(n, links, rng);
    config::NetworkConfig cfg = config::build_bgp_network(t);
    check_engine_vs_baseline(t, cfg, "random-bgp trial " + std::to_string(trial));
  }
}

TEST(Differential, BaselineDetectsBadGadgetToo) {
  const topo::Topology t = topo::make_full_mesh(4);
  config::NetworkConfig cfg = config::build_bgp_network(t);
  for (unsigned i = 1; i <= 3; ++i) {
    cfg.devices.at("m" + std::to_string(i)).bgp->networks.clear();
  }
  config::set_local_pref(cfg, "m1", "to-m2", 200);
  config::set_local_pref(cfg, "m2", "to-m3", 200);
  config::set_local_pref(cfg, "m3", "to-m1", 200);
  EXPECT_THROW(baseline::simulate(t, cfg), baseline::NonconvergenceError);
}

}  // namespace
}  // namespace rcfg::routing
