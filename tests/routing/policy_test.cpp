#include "routing/policy.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace rcfg::routing {
namespace {

using config::Action;
using config::RouteAttrs;

net::Ipv4Prefix pfx(const char* s) { return *net::Ipv4Prefix::parse(s); }

config::DeviceConfig device_with_policy() {
  config::DeviceConfig dev;
  config::PrefixList pl;
  pl.name = "PL";
  pl.entries.push_back(config::PrefixListEntry{10, Action::kPermit, pfx("10.0.0.0/8"), 0, 32});
  dev.prefix_lists["PL"] = pl;

  config::RouteMap rm;
  rm.name = "RM";
  config::RouteMapClause c1;
  c1.seq = 10;
  c1.match_prefix_list = "PL";
  c1.set_local_pref = 200;
  rm.clauses.push_back(c1);
  config::RouteMapClause c2;
  c2.seq = 20;
  c2.action = Action::kDeny;
  rm.clauses.push_back(c2);
  dev.route_maps["RM"] = rm;
  return dev;
}

TEST(CompilePolicy, ResolvesPrefixLists) {
  const config::DeviceConfig dev = device_with_policy();
  const CompiledPolicy p = compile_policy(dev, "RM");
  ASSERT_EQ(p.clauses.size(), 2u);
  EXPECT_TRUE(p.clauses[0].has_match);
  ASSERT_EQ(p.clauses[0].match_entries.size(), 1u);
  EXPECT_EQ(p.clauses[0].match_entries[0].prefix, pfx("10.0.0.0/8"));
  EXPECT_FALSE(p.clauses[1].has_match);
}

TEST(CompilePolicy, DanglingRouteMapRejectsAll) {
  const config::DeviceConfig dev;
  const CompiledPolicy p = compile_policy(dev, "NOPE");
  EXPECT_TRUE(p.clauses.empty());
  EXPECT_FALSE(apply_policy(p, pfx("10.0.0.0/8"), RouteAttrs{}).has_value());
}

TEST(CompilePolicy, DanglingPrefixListFailsClosed) {
  config::DeviceConfig dev;
  config::RouteMap rm;
  config::RouteMapClause c;
  c.seq = 10;
  c.match_prefix_list = "MISSING";
  rm.clauses.push_back(c);
  dev.route_maps["RM"] = rm;
  const CompiledPolicy p = compile_policy(dev, "RM");
  EXPECT_FALSE(apply_policy(p, pfx("10.0.0.0/8"), RouteAttrs{}).has_value());
}

TEST(ApplyPolicy, MatchesUncompiledSemantics) {
  const config::DeviceConfig dev = device_with_policy();
  const CompiledPolicy p = compile_policy(dev, "RM");
  const config::RouteMap& rm = dev.route_maps.at("RM");

  for (const char* s : {"10.0.0.0/8", "10.1.0.0/16", "10.1.2.3/32", "192.168.0.0/16", "0.0.0.0/0"}) {
    const auto a = apply_policy(p, pfx(s), RouteAttrs{});
    const auto b = config::apply_route_map(rm, dev, pfx(s), RouteAttrs{});
    EXPECT_EQ(a.has_value(), b.has_value()) << s;
    if (a && b) EXPECT_EQ(*a, *b) << s;
  }
}

/// Property: compiled and uncompiled evaluation agree on random policies
/// and random routes.
TEST(ApplyPolicyProperty, RandomPoliciesAgree) {
  core::Rng rng{31337};
  for (int trial = 0; trial < 50; ++trial) {
    config::DeviceConfig dev;
    config::PrefixList pl;
    pl.name = "P";
    for (int i = 0; i < 4; ++i) {
      config::PrefixListEntry e;
      e.seq = (i + 1) * 10;
      e.action = rng.next_bool(0.7) ? Action::kPermit : Action::kDeny;
      const auto len = static_cast<std::uint8_t>(rng.next_in(4, 28));
      e.prefix = net::Ipv4Prefix{net::Ipv4Addr{static_cast<std::uint32_t>(rng.next())}, len};
      if (rng.next_bool(0.5)) e.ge = static_cast<std::uint8_t>(rng.next_in(len, 32));
      if (rng.next_bool(0.5)) e.le = static_cast<std::uint8_t>(rng.next_in(e.ge ? e.ge : len, 32));
      pl.entries.push_back(e);
    }
    dev.prefix_lists["P"] = pl;

    config::RouteMap rm;
    rm.name = "R";
    for (int i = 0; i < 3; ++i) {
      config::RouteMapClause c;
      c.seq = (i + 1) * 10;
      c.action = rng.next_bool(0.8) ? Action::kPermit : Action::kDeny;
      if (rng.next_bool(0.6)) c.match_prefix_list = "P";
      if (rng.next_bool(0.5)) c.set_local_pref = static_cast<std::uint32_t>(rng.next_in(50, 300));
      if (rng.next_bool(0.3)) c.set_med = static_cast<std::uint32_t>(rng.next_in(0, 100));
      rm.clauses.push_back(c);
    }
    dev.route_maps["R"] = rm;

    const CompiledPolicy p = compile_policy(dev, "R");
    for (int probe = 0; probe < 40; ++probe) {
      const auto len = static_cast<std::uint8_t>(rng.next_in(0, 32));
      const net::Ipv4Prefix route{net::Ipv4Addr{static_cast<std::uint32_t>(rng.next())}, len};
      RouteAttrs in;
      in.local_pref = static_cast<std::uint32_t>(rng.next_in(1, 400));
      const auto a = apply_policy(p, route, in);
      const auto b = config::apply_route_map(rm, dev, route, in);
      ASSERT_EQ(a.has_value(), b.has_value()) << route.to_string();
      if (a) ASSERT_EQ(*a, *b) << route.to_string();
    }
  }
}

TEST(CompiledPolicy, HashAndEqualityTrackContent) {
  const config::DeviceConfig dev = device_with_policy();
  const CompiledPolicy a = compile_policy(dev, "RM");
  CompiledPolicy b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::hash<CompiledPolicy>{}(a), std::hash<CompiledPolicy>{}(b));
  b.clauses[0].set_local_pref = 201;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rcfg::routing
