// RIPv2 — the third protocol, added to demonstrate the paper's §4.2 claim
// that "other routing protocols can also be easily integrated due to the
// generality of our modeling method".

#include <gtest/gtest.h>

#include "baseline/simulator.h"
#include "config/builders.h"
#include "config/parse.h"
#include "config/print.h"
#include "core/rng.h"
#include "routing/generator.h"
#include "topo/generators.h"

namespace rcfg::routing {
namespace {

FibEntry fib_row(const topo::Topology& t, const dd::ZSet<FibEntry>& fib, const char* node,
                 net::Ipv4Prefix prefix) {
  const topo::NodeId n = t.find_node(node);
  for (const auto& [e, w] : fib) {
    if (e.node == n && e.prefix == prefix) return e;
  }
  ADD_FAILURE() << "no FIB row for " << node << " " << prefix.to_string();
  return FibEntry{};
}

bool has_row(const topo::Topology& t, const dd::ZSet<FibEntry>& fib, const char* node,
             net::Ipv4Prefix prefix) {
  const topo::NodeId n = t.find_node(node);
  for (const auto& [e, w] : fib) {
    if (e.node == n && e.prefix == prefix) return true;
  }
  return false;
}

TEST(RipConfig, ParsePrintRoundTrip) {
  const topo::Topology t = topo::make_ring(3);
  const config::NetworkConfig cfg = config::build_rip_network(t);
  EXPECT_EQ(config::parse_network(config::print_network(cfg)), cfg);
  const std::string text = config::print_device(cfg.devices.at("r0"));
  EXPECT_NE(text.find("rip enable"), std::string::npos);
  EXPECT_NE(text.find("router rip"), std::string::npos);
}

TEST(RipFacts, AdjacenciesAndOrigins) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig cfg = config::build_rip_network(t);
  const FactSnapshot f = compile_facts(t, cfg);
  EXPECT_EQ(f.rip_links.size(), 8u);       // 4 links, both directions
  EXPECT_EQ(f.rip_origins.size(), 4u * 3u);  // lan0 + two /31s per node
  EXPECT_TRUE(f.ospf_links.empty());

  config::fail_link(cfg, t, 0);
  const FactSnapshot f2 = compile_facts(t, cfg);
  EXPECT_EQ(f2.rip_links.size(), 6u);
}

TEST(RipGenerator, HopCountShortestPath) {
  const topo::Topology t = topo::make_ring(5);
  const config::NetworkConfig cfg = config::build_rip_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);

  const auto p2 = config::host_prefix(t.find_node("r2"));
  const FibEntry e = fib_row(t, gen.fib(), "r0", p2);
  EXPECT_EQ(e.action, FibAction::kForward);
  ASSERT_EQ(e.out_ifaces.size(), 1u);
  EXPECT_EQ(e.out_ifaces[0], t.find_interface(t.find_node("r0"), "to-r1"));
}

TEST(RipGenerator, EcmpLikeOspf) {
  const topo::Topology t = topo::make_fat_tree(4);
  const config::NetworkConfig cfg = config::build_rip_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);
  const auto dst = config::host_prefix(t.find_node("edge1-0"));
  EXPECT_EQ(fib_row(t, gen.fib(), "edge0-0", dst).out_ifaces.size(), 2u);
}

TEST(RipGenerator, FifteenHopHorizon) {
  // A 40-node chain: nodes further than 15 hops from the origin must have
  // no route to its prefix (RIP metric 16 = infinity). The connected /31s
  // of distant links are likewise out of range.
  const topo::Topology t = topo::make_grid(40, 1);
  const config::NetworkConfig cfg = config::build_rip_network(t);
  routing::GeneratorOptions opts;
  opts.max_rounds = 40;  // cap is the protocol's, not the engine's
  IncrementalGenerator gen(t, opts);
  gen.apply(cfg);

  const auto p0 = config::host_prefix(t.find_node("n0-0"));
  // n14-0 is 14 hops from n0-0: its metric is 15 (origin metric 1 + 14).
  EXPECT_TRUE(has_row(t, gen.fib(), "n14-0", p0));
  // n15-0 would need metric 16 = infinity.
  EXPECT_FALSE(has_row(t, gen.fib(), "n15-0", p0));
  EXPECT_FALSE(has_row(t, gen.fib(), "n39-0", p0));
}

TEST(RipGenerator, LinkFailureReroutes) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig cfg = config::build_rip_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);

  const auto p1 = config::host_prefix(t.find_node("r1"));
  config::fail_link(cfg, t, 0);  // r0 -- r1
  const DataPlaneDelta d = gen.apply(cfg);
  EXPECT_FALSE(d.fib.empty());
  EXPECT_EQ(fib_row(t, gen.fib(), "r0", p1).out_ifaces[0],
            t.find_interface(t.find_node("r0"), "to-r3"));
}

TEST(RipDifferential, EngineMatchesBaseline) {
  for (const auto& [name, t] : {
           std::pair<const char*, topo::Topology>{"ring5", topo::make_ring(5)},
           {"grid3x3", topo::make_grid(3, 3)},
           {"fattree4", topo::make_fat_tree(4)},
       }) {
    const config::NetworkConfig cfg = config::build_rip_network(t);
    IncrementalGenerator gen(t);
    gen.apply(cfg);
    const baseline::SimulationResult sim = baseline::simulate(t, cfg);
    EXPECT_TRUE(gen.fib() == sim.fib) << "rip/" << name;
  }
}

TEST(RipDifferential, HorizonMatchesBaseline) {
  const topo::Topology t = topo::make_grid(20, 1);
  const config::NetworkConfig cfg = config::build_rip_network(t);
  routing::GeneratorOptions opts;
  opts.max_rounds = 24;
  IncrementalGenerator gen(t, opts);
  gen.apply(cfg);
  const baseline::SimulationResult sim = baseline::simulate(t, cfg);
  EXPECT_TRUE(gen.fib() == sim.fib);
}

TEST(RipRedistribution, RipIntoBgpAcrossBorder) {
  // n0 -- n1 speak RIP; n1 -- n2 speak BGP; n1 redistributes rip into bgp.
  const topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig rip = config::build_rip_network(t);
  config::NetworkConfig bgp = config::build_bgp_network(t);

  config::NetworkConfig cfg;
  cfg.devices["n0-0"] = rip.devices.at("n0-0");
  config::DeviceConfig n1 = rip.devices.at("n1-0");
  n1.find_interface("to-n2-0")->rip = false;
  config::BgpConfig b;
  b.local_as = 65101;
  config::BgpNeighbor nb;
  nb.iface = "to-n2-0";
  nb.remote_as = 65102;
  b.neighbors.push_back(nb);
  b.redistribute.push_back({config::Redistribution::Source::kRip, 0, std::nullopt});
  n1.bgp = b;
  cfg.devices["n1-0"] = n1;
  config::DeviceConfig n2 = bgp.devices.at("n2-0");
  n2.bgp->local_as = 65102;
  n2.bgp->neighbors.clear();
  config::BgpNeighbor nb2;
  nb2.iface = "to-n1-0";
  nb2.remote_as = 65101;
  n2.bgp->neighbors.push_back(nb2);
  cfg.devices["n2-0"] = n2;

  IncrementalGenerator gen(t);
  gen.apply(cfg);
  const auto p0 = config::host_prefix(t.find_node("n0-0"));
  const FibEntry e = fib_row(t, gen.fib(), "n2-0", p0);
  EXPECT_EQ(e.action, FibAction::kForward);

  // And the baseline agrees on the whole FIB.
  const baseline::SimulationResult sim = baseline::simulate(t, cfg);
  EXPECT_TRUE(gen.fib() == sim.fib);
}

TEST(RipRedistribution, OspfIntoRipRespectsHorizon) {
  // An OSPF route redistributed into RIP with metric 14 can travel one more
  // hop, then hits infinity.
  const topo::Topology t = topo::make_grid(4, 1);
  config::NetworkConfig cfg = config::build_rip_network(t);
  // n0's interfaces leave RIP; n0--n1 runs OSPF instead.
  auto& n0 = cfg.devices.at("n0-0");
  for (auto& i : n0.interfaces) {
    i.rip = false;
    i.ospf_area = 0;
  }
  n0.rip.reset();
  n0.ospf.emplace();
  auto& n1 = cfg.devices.at("n1-0");
  n1.find_interface("to-n0-0")->rip = false;
  n1.find_interface("to-n0-0")->ospf_area = 0;
  n1.ospf.emplace();
  n1.rip->redistribute.push_back({config::Redistribution::Source::kOspf, 14, std::nullopt});

  IncrementalGenerator gen(t);
  gen.apply(cfg);
  const auto p0 = config::host_prefix(t.find_node("n0-0"));
  // n2 hears the redistributed route at metric 15: reachable.
  EXPECT_TRUE(has_row(t, gen.fib(), "n2-0", p0));
  // n3 would need metric 16: unreachable.
  EXPECT_FALSE(has_row(t, gen.fib(), "n3-0", p0));

  const baseline::SimulationResult sim = baseline::simulate(t, cfg);
  EXPECT_TRUE(gen.fib() == sim.fib);
}

TEST(RipChangeSequence, IncrementalMatchesScratch) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_rip_network(t);
  IncrementalGenerator incremental(t);
  incremental.apply(cfg);

  core::Rng rng{33};
  for (int step = 0; step < 8; ++step) {
    const auto l = static_cast<topo::LinkId>(rng.next_below(t.link_count()));
    if (rng.next_bool(0.6)) {
      config::fail_link(cfg, t, l);
    } else {
      config::restore_link(cfg, t, l);
    }
    incremental.apply(cfg);

    IncrementalGenerator scratch(t);
    scratch.apply(cfg);
    ASSERT_TRUE(incremental.fib() == scratch.fib()) << "step " << step;
  }
}

}  // namespace
}  // namespace rcfg::routing
