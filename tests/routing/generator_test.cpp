#include "routing/generator.h"

#include <gtest/gtest.h>

#include <chrono>

#include "config/builders.h"
#include "topo/generators.h"

namespace rcfg::routing {
namespace {

/// Fetch the FIB row for (node-name, prefix); fails the test when absent.
FibEntry fib_row(const topo::Topology& t, const dd::ZSet<FibEntry>& fib, const char* node,
                 net::Ipv4Prefix prefix) {
  const topo::NodeId n = t.find_node(node);
  for (const auto& [e, w] : fib) {
    if (e.node == n && e.prefix == prefix) {
      EXPECT_EQ(w, 1) << "FIB row with non-unit weight";
      return e;
    }
  }
  ADD_FAILURE() << "no FIB row for " << node << " " << prefix.to_string();
  return FibEntry{};
}

bool has_row(const topo::Topology& t, const dd::ZSet<FibEntry>& fib, const char* node,
             net::Ipv4Prefix prefix) {
  const topo::NodeId n = t.find_node(node);
  for (const auto& [e, w] : fib) {
    if (e.node == n && e.prefix == prefix) return true;
  }
  return false;
}

topo::IfaceId iface(const topo::Topology& t, const char* node, const char* name) {
  return t.find_interface(t.find_node(node), name);
}

TEST(Generator, OspfChainShortestPath) {
  // r0 - r1 - r2 - r3 (grid 4x1). Host prefix of r3 must be reached from r0
  // via to-r1 with the chain of costs.
  const topo::Topology t = topo::make_grid(4, 1);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);

  const auto p3 = config::host_prefix(t.find_node("n3-0"));
  const FibEntry e = fib_row(t, gen.fib(), "n0-0", p3);
  EXPECT_EQ(e.action, FibAction::kForward);
  ASSERT_EQ(e.out_ifaces.size(), 1u);
  EXPECT_EQ(e.out_ifaces[0], iface(t, "n0-0", "to-n1-0"));

  // The destination node itself delivers.
  EXPECT_EQ(fib_row(t, gen.fib(), "n3-0", p3).action, FibAction::kDeliver);
}

TEST(Generator, OspfRingPicksShorterArc) {
  // 5-ring: r0 -> r2 is shorter via r1 (2 hops) than via r4,r3 (3 hops).
  const topo::Topology t = topo::make_ring(5);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);

  const auto p2 = config::host_prefix(t.find_node("r2"));
  const FibEntry e = fib_row(t, gen.fib(), "r0", p2);
  ASSERT_EQ(e.out_ifaces.size(), 1u);
  EXPECT_EQ(e.out_ifaces[0], iface(t, "r0", "to-r1"));
}

TEST(Generator, OspfEcmpInFatTree) {
  // Between edge switches in different pods every aggregation uplink is an
  // equal-cost path: the edge's FIB entry must hold k/2 = 2 egresses.
  const topo::Topology t = topo::make_fat_tree(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);

  const auto dst = config::host_prefix(t.find_node("edge1-0"));
  const FibEntry e = fib_row(t, gen.fib(), "edge0-0", dst);
  EXPECT_EQ(e.action, FibAction::kForward);
  EXPECT_EQ(e.out_ifaces.size(), 2u);
}

TEST(Generator, OspfLinkCostChangeReroutes) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);

  const auto p1 = config::host_prefix(t.find_node("r1"));
  EXPECT_EQ(fib_row(t, gen.fib(), "r0", p1).out_ifaces[0], iface(t, "r0", "to-r1"));

  // Make the direct arc expensive: r0 now goes the long way (r3, r2, r1).
  config::set_ospf_cost(cfg, "r0", "to-r1", 100);
  const DataPlaneDelta d = gen.apply(cfg);
  EXPECT_FALSE(d.fib.empty());
  EXPECT_EQ(fib_row(t, gen.fib(), "r0", p1).out_ifaces[0], iface(t, "r0", "to-r3"));
}

TEST(Generator, OspfLinkFailureReroutes) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);
  const std::size_t fib_before = gen.fib().size();

  // Fail link r0--r1 (link id of the first connect in make_ring is 0).
  config::fail_link(cfg, t, 0);
  gen.apply(cfg);

  const auto p1 = config::host_prefix(t.find_node("r1"));
  const FibEntry e = fib_row(t, gen.fib(), "r0", p1);
  EXPECT_EQ(e.out_ifaces[0], iface(t, "r0", "to-r3"));

  // Restore: FIB returns to its original size and route.
  config::restore_link(cfg, t, 0);
  gen.apply(cfg);
  EXPECT_EQ(gen.fib().size(), fib_before);
  EXPECT_EQ(fib_row(t, gen.fib(), "r0", p1).out_ifaces[0], iface(t, "r0", "to-r1"));
}

TEST(Generator, BgpPrefersShorterAsPath) {
  const topo::Topology t = topo::make_ring(5);
  const config::NetworkConfig cfg = config::build_bgp_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);

  const auto p2 = config::host_prefix(t.find_node("r2"));
  EXPECT_EQ(fib_row(t, gen.fib(), "r0", p2).out_ifaces[0], iface(t, "r0", "to-r1"));
  // BGP selects a single best path (no multipath).
  EXPECT_EQ(fib_row(t, gen.fib(), "r0", p2).out_ifaces.size(), 1u);
}

TEST(Generator, BgpLocalPrefOverridesPathLength) {
  const topo::Topology t = topo::make_ring(5);
  config::NetworkConfig cfg = config::build_bgp_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);

  const auto p2 = config::host_prefix(t.find_node("r2"));
  // Prefer everything learned from r4: r0 now reaches r2 the long way.
  config::set_local_pref(cfg, "r0", "to-r4", 150);
  const DataPlaneDelta d = gen.apply(cfg);
  EXPECT_FALSE(d.fib.empty());
  EXPECT_EQ(fib_row(t, gen.fib(), "r0", p2).out_ifaces[0], iface(t, "r0", "to-r4"));
}

TEST(Generator, BgpSessionLossWithdrawsRoutes) {
  const topo::Topology t = topo::make_grid(3, 1);  // chain n0-n1-n2
  config::NetworkConfig cfg = config::build_bgp_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);

  const auto p2 = config::host_prefix(t.find_node("n2-0"));
  EXPECT_TRUE(has_row(t, gen.fib(), "n0-0", p2));

  config::fail_link(cfg, t, 1);  // n1--n2
  gen.apply(cfg);
  EXPECT_FALSE(has_row(t, gen.fib(), "n0-0", p2));
  EXPECT_FALSE(has_row(t, gen.fib(), "n1-0", p2));
  // n2 still delivers its own prefix (connected).
  EXPECT_EQ(fib_row(t, gen.fib(), "n2-0", p2).action, FibAction::kDeliver);
}

TEST(Generator, StaticBeatsOspfByAdminDistance) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  const auto p2 = config::host_prefix(t.find_node("r2"));
  // OSPF would pick either way round the ring (ECMP at distance 2); pin a
  // static route via r3 instead.
  cfg.devices.at("r0").static_routes.push_back({p2, "to-r3", 1});
  IncrementalGenerator gen(t);
  gen.apply(cfg);

  const FibEntry e = fib_row(t, gen.fib(), "r0", p2);
  ASSERT_EQ(e.out_ifaces.size(), 1u);
  EXPECT_EQ(e.out_ifaces[0], iface(t, "r0", "to-r3"));
}

TEST(Generator, NullRouteDrops) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  const auto victim = *net::Ipv4Prefix::parse("203.0.113.0/24");
  cfg.devices.at("r0").static_routes.push_back({victim, "null0", 1});
  IncrementalGenerator gen(t);
  gen.apply(cfg);
  EXPECT_EQ(fib_row(t, gen.fib(), "r0", victim).action, FibAction::kDrop);
}

TEST(Generator, RedistributionOspfIntoBgp) {
  // Chain: n0 -- n1 -- n2. n0/n1 speak OSPF; n1/n2 speak BGP; n1
  // redistributes OSPF into BGP so n2 learns n0's prefix.
  const topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig cfg;
  {
    config::NetworkConfig ospf = config::build_ospf_network(t);
    config::NetworkConfig bgp = config::build_bgp_network(t);
    cfg.devices["n0-0"] = ospf.devices.at("n0-0");
    // n1: OSPF toward n0, BGP toward n2.
    config::DeviceConfig n1 = ospf.devices.at("n1-0");
    n1.find_interface("to-n2-0")->ospf_area = config::kNoOspfArea;
    config::BgpConfig b;
    b.local_as = 65101;
    config::BgpNeighbor nb;
    nb.iface = "to-n2-0";
    nb.remote_as = 65102;
    b.neighbors.push_back(nb);
    b.redistribute.push_back({config::Redistribution::Source::kOspf, 0, std::nullopt});
    n1.bgp = b;
    cfg.devices["n1-0"] = n1;
    // n2: BGP only.
    config::DeviceConfig n2 = bgp.devices.at("n2-0");
    n2.bgp->local_as = 65102;
    n2.bgp->neighbors.clear();
    config::BgpNeighbor nb2;
    nb2.iface = "to-n1-0";
    nb2.remote_as = 65101;
    n2.bgp->neighbors.push_back(nb2);
    cfg.devices["n2-0"] = n2;
  }

  IncrementalGenerator gen(t);
  gen.apply(cfg);

  const auto p0 = config::host_prefix(t.find_node("n0-0"));
  const FibEntry e = fib_row(t, gen.fib(), "n2-0", p0);
  EXPECT_EQ(e.action, FibAction::kForward);
  EXPECT_EQ(e.out_ifaces[0], iface(t, "n2-0", "to-n1-0"));
}

TEST(Generator, BadGadgetOscillationDetected) {
  // Griffin's BAD GADGET: a triangle where each node prefers the route
  // through its clockwise neighbor (local-pref 200) over its direct route.
  // No stable solution exists; the engine must report it (paper §6) rather
  // than loop forever.
  const topo::Topology t = topo::make_full_mesh(4);  // m0 = origin, m1..m3 wheel
  config::NetworkConfig cfg = config::build_bgp_network(t);
  // Only m0 originates a prefix.
  for (unsigned i = 1; i <= 3; ++i) {
    cfg.devices.at("m" + std::to_string(i)).bgp->networks.clear();
  }
  // mi prefers routes from m(i%3+1) (the next wheel node) over direct.
  config::set_local_pref(cfg, "m1", "to-m2", 200);
  config::set_local_pref(cfg, "m2", "to-m3", 200);
  config::set_local_pref(cfg, "m3", "to-m1", 200);

  IncrementalGenerator gen(t);
  gen.set_flush_budget(2'000'000);
  gen.set_recurrence_threshold(500);
  EXPECT_THROW(gen.apply(cfg), dd::NonterminationError);
}

TEST(Generator, FilterDeltasComeFromConfigDiffing) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  IncrementalGenerator gen(t);
  EXPECT_TRUE(gen.apply(cfg).filters.empty());

  core::Rng rng{3};
  config::attach_random_acl(cfg, t, "r0", "to-r1", true, 4, rng);
  DataPlaneDelta d = gen.apply(cfg);
  EXPECT_EQ(d.filters.size(), 5u);  // 4 + catch-all, all insertions
  for (const auto& [r, w] : d.filters) EXPECT_EQ(w, 1);
  EXPECT_TRUE(d.fib.empty());  // ACLs do not touch forwarding

  // Removing the binding retracts all rules.
  cfg.devices.at("r0").find_interface("to-r1")->acl_in.reset();
  d = gen.apply(cfg);
  EXPECT_EQ(d.filters.size(), 5u);
  for (const auto& [r, w] : d.filters) EXPECT_EQ(w, -1);
}

TEST(Generator, NoChangeNoDelta) {
  const topo::Topology t = topo::make_fat_tree(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  IncrementalGenerator gen(t);
  gen.apply(cfg);
  const std::uint64_t full_flushes = gen.last_flushes();

  const DataPlaneDelta d = gen.apply(cfg);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(gen.last_flushes(), 0u);
  EXPECT_GT(full_flushes, 0u);
}

TEST(Generator, IncrementalWorkIsSmall) {
  // The headline claim: a local change costs a small fraction of the
  // from-scratch computation. Wall time with a very generous (2x) margin —
  // the benches measure the real 20x-90x gap.
  const topo::Topology t = topo::make_fat_tree(6);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  IncrementalGenerator gen(t);
  const auto t0 = std::chrono::steady_clock::now();
  gen.apply(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  config::set_ospf_cost(cfg, "edge0-0", "to-agg0-0", 100);
  gen.apply(cfg);
  const auto t2 = std::chrono::steady_clock::now();
  EXPECT_LT((t2 - t1) * 2, t1 - t0);
}

}  // namespace
}  // namespace rcfg::routing
