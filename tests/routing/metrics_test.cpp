#include "routing/metrics.h"

#include <gtest/gtest.h>

#include <vector>

#include "config/builders.h"
#include "routing/generator.h"
#include "topo/generators.h"

namespace rcfg::routing {
namespace {

TEST(MetricPathStats, UnitCostsMatchHopDiameter) {
  const auto ring = metric_path_stats(topo::make_ring(6));
  EXPECT_TRUE(ring.connected);
  EXPECT_EQ(ring.max_hops, 3u);
  EXPECT_EQ(ring.weighted_diameter, 3u);

  const auto chain = metric_path_stats(topo::make_grid(5, 1));
  EXPECT_EQ(chain.max_hops, 4u);
  EXPECT_EQ(chain.weighted_diameter, 4u);
}

TEST(MetricPathStats, WeightedPathPrefersManyCheapHops) {
  // 10-ring where the r9--r0 closing link costs 1000: the minimal-cost
  // r0 -> r9 path walks the other nine unit links, so the hop bound is 9
  // even though the hop diameter of the ring is 5.
  const topo::Topology t = topo::make_ring(10);
  std::vector<std::uint32_t> cost(t.link_count(), 1);
  cost[9] = 1000;
  const auto stats = metric_path_stats(t, cost);
  EXPECT_TRUE(stats.connected);
  EXPECT_EQ(stats.max_hops, 9u);
  EXPECT_EQ(stats.weighted_diameter, 9u);
}

TEST(MetricPathStats, EqualCostTiesCountTheLongerPath) {
  // A -- B -- C at cost 1+1 ties the direct A -- C link at cost 2; the
  // per-round select may stabilize on either, so the bound must cover the
  // two-hop alternative.
  topo::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  t.connect(a, b);
  t.connect(b, c);
  t.connect(a, c);
  const auto stats = metric_path_stats(t, {1, 1, 2});
  EXPECT_EQ(stats.max_hops, 2u);
  EXPECT_EQ(stats.weighted_diameter, 2u);
}

TEST(MetricPathStats, ReportsDisconnection) {
  topo::Topology t;
  t.add_node("x");
  t.add_node("y");
  const auto stats = metric_path_stats(t);
  EXPECT_FALSE(stats.connected);
}

TEST(MetricPathStats, ValidatesCostVector) {
  const topo::Topology t = topo::make_ring(4);
  EXPECT_THROW(metric_path_stats(t, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(metric_path_stats(t, {1, 2, 3, 4, 5}), std::invalid_argument);
  EXPECT_THROW(metric_path_stats(t, {1, 0, 1, 1}), std::invalid_argument);
}

TEST(RecommendedMaxRounds, SizesTheGeneratorForWeightedGraphs) {
  // 30-ring with one cost-1000 link: the longest minimal-cost path is 29
  // hops, past the generator's default 24 rounds. recommended_max_rounds
  // must make apply() converge where the default detects non-convergence.
  const topo::Topology t = topo::make_ring(30);
  std::vector<std::uint32_t> cost(t.link_count(), 1);
  cost[29] = 1000;
  config::NetworkConfig cfg = config::build_ospf_network(t);
  config::apply_link_costs(cfg, t, cost);

  const unsigned rounds = recommended_max_rounds(t, cost);
  EXPECT_GE(rounds, 29u + 1);

  {
    IncrementalGenerator gen(t);  // default max_rounds = 24
    EXPECT_THROW(gen.apply(cfg), dd::NonterminationError);
  }

  GeneratorOptions opts;
  opts.max_rounds = rounds;
  IncrementalGenerator gen(t, opts);
  gen.apply(cfg);
  // r0 reaches r29's hosts the cheap way round (29 unit hops beat the
  // cost-1000 closing link).
  const auto p29 = config::host_prefix(t.find_node("r29"));
  const topo::NodeId r0 = t.find_node("r0");
  bool found = false;
  for (const auto& [e, w] : gen.fib()) {
    if (e.node != r0 || e.prefix != p29) continue;
    found = true;
    ASSERT_EQ(e.out_ifaces.size(), 1u);
    EXPECT_EQ(e.out_ifaces[0], t.find_interface(r0, "to-r1"));
  }
  EXPECT_TRUE(found) << "no FIB row for r0 -> " << p29.to_string();
}

}  // namespace
}  // namespace rcfg::routing
