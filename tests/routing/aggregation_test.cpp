// BGP route aggregation (aggregate-address [summary-only]) — one of the
// "complex semantics" the paper's §3.1 calls out for configurations.

#include <gtest/gtest.h>

#include "baseline/simulator.h"
#include "config/builders.h"
#include "config/parse.h"
#include "config/print.h"
#include "core/rng.h"
#include "routing/generator.h"
#include "topo/generators.h"

namespace rcfg::routing {
namespace {

net::Ipv4Prefix pfx(const char* s) { return *net::Ipv4Prefix::parse(s); }

const FibEntry* find_row(const topo::Topology& t, const dd::ZSet<FibEntry>& fib,
                         const char* node, net::Ipv4Prefix prefix) {
  const topo::NodeId n = t.find_node(node);
  for (const auto& [e, w] : fib) {
    if (e.node == n && e.prefix == prefix) return &e;
  }
  return nullptr;
}

/// Chain n0 -- n1 -- n2, all BGP. n1 aggregates n0's and its own host
/// prefixes (10.0.0.0/24 and 10.0.1.0/24, exactly covering 10.0.0.0/23);
/// n2's prefix (10.0.2.0/24) is deliberately outside the aggregate.
struct AggSetup {
  topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig cfg;
  net::Ipv4Prefix agg = pfx("10.0.0.0/23");

  explicit AggSetup(bool summary_only) {
    cfg = config::build_bgp_network(t);
    cfg.devices.at("n1-0").bgp->aggregates.push_back({agg, summary_only});
  }
};

TEST(Aggregation, ParsePrintRoundTrip) {
  AggSetup s(true);
  EXPECT_EQ(config::parse_network(config::print_network(s.cfg)), s.cfg);
  const std::string text = config::print_device(s.cfg.devices.at("n1-0"));
  EXPECT_NE(text.find("aggregate-address 10.0.0.0/23 summary-only"), std::string::npos);
}

TEST(Aggregation, AggregateOriginatedAndPropagated) {
  AggSetup s(false);
  IncrementalGenerator gen(s.t);
  gen.apply(s.cfg);

  // n2 learns the aggregate (and, without summary-only, the specifics too).
  const FibEntry* agg_row = find_row(s.t, gen.fib(), "n2-0", s.agg);
  ASSERT_NE(agg_row, nullptr);
  EXPECT_EQ(agg_row->action, FibAction::kForward);
  EXPECT_NE(find_row(s.t, gen.fib(), "n2-0", config::host_prefix(0)), nullptr);

  // The origin (n1) installs the discard route.
  const FibEntry* origin_row = find_row(s.t, gen.fib(), "n1-0", s.agg);
  ASSERT_NE(origin_row, nullptr);
  EXPECT_EQ(origin_row->action, FibAction::kDrop);
}

TEST(Aggregation, SummaryOnlySuppressesSpecifics) {
  AggSetup s(true);
  IncrementalGenerator gen(s.t);
  gen.apply(s.cfg);

  // n2 sees the aggregate but NOT n0's host prefix...
  EXPECT_NE(find_row(s.t, gen.fib(), "n2-0", s.agg), nullptr);
  EXPECT_EQ(find_row(s.t, gen.fib(), "n2-0", config::host_prefix(0)), nullptr);
  // ...while n2's own prefix (outside the aggregate's origin direction)
  // still reaches n0 normally.
  EXPECT_NE(find_row(s.t, gen.fib(), "n0-0", config::host_prefix(2)), nullptr);
}

TEST(Aggregation, WithdrawnWithLastContributor) {
  AggSetup s(false);
  IncrementalGenerator gen(s.t);
  gen.apply(s.cfg);
  ASSERT_NE(find_row(s.t, gen.fib(), "n2-0", s.agg), nullptr);

  // Remove every contributor: n1 stops originating its own prefix and the
  // n0 session dies. The aggregate must be withdrawn everywhere.
  s.cfg.devices.at("n1-0").bgp->networks.clear();
  config::fail_link(s.cfg, s.t, 0);  // n0 -- n1
  const DataPlaneDelta d = gen.apply(s.cfg);
  EXPECT_FALSE(d.fib.empty());
  EXPECT_EQ(find_row(s.t, gen.fib(), "n2-0", s.agg), nullptr);
  EXPECT_EQ(find_row(s.t, gen.fib(), "n1-0", s.agg), nullptr);

  // Restoring one contributor re-originates it.
  config::restore_link(s.cfg, s.t, 0);
  gen.apply(s.cfg);
  EXPECT_NE(find_row(s.t, gen.fib(), "n2-0", s.agg), nullptr);
}

TEST(Aggregation, UncoveredTrafficDroppedAtOrigin) {
  // Packets inside the aggregate with no more-specific route die at the
  // aggregating router's discard route instead of wandering.
  AggSetup s(true);
  // Widen the aggregate so it contains space nobody owns.
  s.cfg.devices.at("n1-0").bgp->aggregates[0].prefix = pfx("10.0.0.0/16");
  IncrementalGenerator gen(s.t);
  gen.apply(s.cfg);

  const FibEntry* row = find_row(s.t, gen.fib(), "n1-0", pfx("10.0.0.0/16"));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->action, FibAction::kDrop);
}

class AggregationDifferential : public ::testing::TestWithParam<bool> {};

TEST_P(AggregationDifferential, EngineMatchesBaseline) {
  AggSetup s(GetParam());
  IncrementalGenerator gen(s.t);
  gen.apply(s.cfg);
  const baseline::SimulationResult sim = baseline::simulate(s.t, s.cfg);
  EXPECT_TRUE(gen.fib() == sim.fib) << "summary_only=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Modes, AggregationDifferential, ::testing::Bool());

TEST(Aggregation, NestedAggregates) {
  // n1 aggregates /14; n2 aggregates a wider /12 whose only contributor is
  // n1's /14 — aggregates must be able to feed wider aggregates.
  AggSetup s(true);
  s.cfg.devices.at("n2-0").bgp->aggregates.push_back({pfx("10.0.0.0/12"), false});
  IncrementalGenerator gen(s.t);
  gen.apply(s.cfg);

  const FibEntry* wider = find_row(s.t, gen.fib(), "n2-0", pfx("10.0.0.0/12"));
  ASSERT_NE(wider, nullptr);
  EXPECT_EQ(wider->action, FibAction::kDrop);  // discard at its origin
  // And it propagates back toward n1/n0.
  EXPECT_NE(find_row(s.t, gen.fib(), "n0-0", pfx("10.0.0.0/12")), nullptr);

  const baseline::SimulationResult sim = baseline::simulate(s.t, s.cfg);
  EXPECT_TRUE(gen.fib() == sim.fib);
}

TEST(Aggregation, IncrementalMatchesScratchAcrossChanges) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_bgp_network(t);
  // Every pod-0 edge aggregates the pod's host space toward the fabric.
  cfg.devices.at("edge0-0").bgp->aggregates.push_back({pfx("10.0.0.0/18"), false});

  IncrementalGenerator incremental(t);
  incremental.apply(cfg);

  core::Rng rng{55};
  for (int step = 0; step < 6; ++step) {
    const auto l = static_cast<topo::LinkId>(rng.next_below(t.link_count()));
    if (rng.next_bool(0.5)) {
      config::fail_link(cfg, t, l);
    } else {
      config::restore_link(cfg, t, l);
    }
    incremental.apply(cfg);
    IncrementalGenerator scratch(t);
    scratch.apply(cfg);
    ASSERT_TRUE(incremental.fib() == scratch.fib()) << "step " << step;
  }
}

}  // namespace
}  // namespace rcfg::routing
