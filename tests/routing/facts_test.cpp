#include "routing/facts.h"

#include <gtest/gtest.h>

#include "config/builders.h"
#include "topo/generators.h"

namespace rcfg::routing {
namespace {

TEST(CompileFacts, OspfRingHasAllAdjacencies) {
  const topo::Topology t = topo::make_ring(4);
  const config::NetworkConfig cfg = config::build_ospf_network(t);
  const FactSnapshot f = compile_facts(t, cfg);
  // 4 links, two directed facts each.
  EXPECT_EQ(f.ospf_links.size(), 8u);
  // Each node: lan0 /24 plus two /31 link subnets, all OSPF origins.
  EXPECT_EQ(f.ospf_origins.size(), 4u * 3u);
  EXPECT_EQ(f.connected.size(), 4u * 3u);
  EXPECT_TRUE(f.bgp_sessions.empty());
  EXPECT_TRUE(f.bgp_origins.empty());
}

TEST(CompileFacts, ShutdownKillsAdjacencyAndConnected) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  config::fail_link(cfg, t, 0);
  const FactSnapshot f = compile_facts(t, cfg);
  EXPECT_EQ(f.ospf_links.size(), 6u);           // one link (2 directed facts) gone
  EXPECT_EQ(f.connected.size(), 4u * 3u - 2u);  // both /31 ends down
  EXPECT_EQ(f.ospf_origins.size(), 4u * 3u - 2u);
}

TEST(CompileFacts, LinkCostLandsOnReceiverSide) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  config::set_ospf_cost(cfg, "r0", "to-r1", 42);
  const FactSnapshot f = compile_facts(t, cfg);

  const topo::NodeId r0 = t.find_node("r0");
  const topo::NodeId r1 = t.find_node("r1");
  const topo::IfaceId r0_if = t.find_interface(r0, "to-r1");
  bool found = false;
  for (const auto& [l, w] : f.ospf_links) {
    if (l.from == r1 && l.to == r0) {
      // r0 pays its own egress cost toward r1.
      EXPECT_EQ(l.cost, 42u);
      EXPECT_EQ(l.via_iface, r0_if);
      found = true;
    }
    if (l.from == r0 && l.to == r1) {
      EXPECT_EQ(l.cost, 1u);  // r1's side unchanged
    }
  }
  EXPECT_TRUE(found);
}

TEST(CompileFacts, ZeroOspfCostRejected) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  config::set_ospf_cost(cfg, "r0", "to-r1", 0);
  EXPECT_THROW(compile_facts(t, cfg), std::invalid_argument);
}

TEST(CompileFacts, BgpSessionsRequireMutualConfig) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_bgp_network(t);
  {
    const FactSnapshot f = compile_facts(t, cfg);
    EXPECT_EQ(f.bgp_sessions.size(), 6u);  // 3 links * 2 directions
    EXPECT_EQ(f.bgp_origins.size(), 3u);
  }
  // Break one side's remote-as: both directions of that session vanish.
  cfg.devices.at("r0").bgp->neighbors[0].remote_as = 64999;
  {
    const FactSnapshot f = compile_facts(t, cfg);
    EXPECT_EQ(f.bgp_sessions.size(), 4u);
  }
}

TEST(CompileFacts, SessionPoliciesAreResolvedValues) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_bgp_network(t);
  config::set_local_pref(cfg, "r0", "to-r1", 150);
  const FactSnapshot f = compile_facts(t, cfg);

  const topo::NodeId r0 = t.find_node("r0");
  const topo::NodeId r1 = t.find_node("r1");
  bool found = false;
  for (const auto& [s, w] : f.bgp_sessions) {
    if (s.from == r1 && s.to == r0) {
      EXPECT_TRUE(s.has_import);
      ASSERT_EQ(s.import_policy.clauses.size(), 1u);
      EXPECT_EQ(s.import_policy.clauses[0].set_local_pref, 150u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CompileFacts, StaticRouteResolution) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  auto& dev = cfg.devices.at("r0");
  dev.static_routes.push_back({*net::Ipv4Prefix::parse("1.0.0.0/8"), "to-r1", 1});
  dev.static_routes.push_back({*net::Ipv4Prefix::parse("2.0.0.0/8"), "null0", 5});
  dev.static_routes.push_back({*net::Ipv4Prefix::parse("3.0.0.0/8"), "ghost0", 1});  // unresolvable
  dev.static_routes.push_back({*net::Ipv4Prefix::parse("4.0.0.0/8"), "lan0", 1});    // stub iface

  const FactSnapshot f = compile_facts(t, cfg);
  ASSERT_EQ(f.statics.size(), 2u);
  bool saw_fwd = false, saw_drop = false;
  for (const auto& [s, w] : f.statics) {
    if (s.prefix == *net::Ipv4Prefix::parse("1.0.0.0/8")) {
      EXPECT_FALSE(s.drop);
      EXPECT_NE(s.egress, topo::kInvalidIface);
      saw_fwd = true;
    }
    if (s.prefix == *net::Ipv4Prefix::parse("2.0.0.0/8")) {
      EXPECT_TRUE(s.drop);
      EXPECT_EQ(s.distance, 5u);
      saw_drop = true;
    }
  }
  EXPECT_TRUE(saw_fwd);
  EXPECT_TRUE(saw_drop);
}

TEST(CompileFacts, RedistributionFacts) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  auto& dev = cfg.devices.at("r0");
  // Give r0 a BGP process redistributing OSPF, and OSPF redistributing BGP.
  config::BgpConfig bgp;
  bgp.local_as = 65000;
  bgp.redistribute.push_back({config::Redistribution::Source::kOspf, 7, std::nullopt});
  dev.bgp = bgp;
  dev.ospf->redistribute.push_back({config::Redistribution::Source::kBgp, 0, std::nullopt});
  dev.static_routes.push_back({*net::Ipv4Prefix::parse("9.9.0.0/16"), "null0", 1});
  dev.ospf->redistribute.push_back({config::Redistribution::Source::kStatic, 33, std::nullopt});

  const FactSnapshot f = compile_facts(t, cfg);
  ASSERT_EQ(f.redist.size(), 2u);
  bool saw_o2b = false, saw_b2o = false;
  for (const auto& [fact, w] : f.redist) {
    if (fact.from == Proto::kOspf && fact.to == Proto::kBgp) {
      EXPECT_EQ(fact.metric, 7u);
      EXPECT_EQ(fact.as_number, 65000u);
      saw_o2b = true;
    }
    if (fact.from == Proto::kBgp && fact.to == Proto::kOspf) {
      EXPECT_EQ(fact.metric, 20u);  // default applied
      saw_b2o = true;
    }
  }
  EXPECT_TRUE(saw_o2b);
  EXPECT_TRUE(saw_b2o);

  // The static prefix shows up as an OSPF origin with the configured metric.
  bool saw = false;
  for (const auto& [o, w] : f.ospf_origins) {
    if (o.prefix == *net::Ipv4Prefix::parse("9.9.0.0/16")) {
      EXPECT_EQ(o.metric, 33u);
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(CompileFacts, UnknownDeviceThrows) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  config::DeviceConfig ghost;
  ghost.hostname = "ghost";
  cfg.devices["ghost"] = ghost;
  EXPECT_THROW(compile_facts(t, cfg), std::invalid_argument);
}

TEST(ExtractFilters, BoundAclsBecomeRules) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  core::Rng rng{7};
  config::attach_random_acl(cfg, t, "r0", "to-r1", /*inbound=*/true, 5, rng);

  const auto rules = extract_filter_rules(t, cfg);
  EXPECT_EQ(rules.size(), 6u);  // 5 + catch-all
  for (const auto& [r, w] : rules) {
    EXPECT_TRUE(r.inbound);
    EXPECT_EQ(r.node, t.find_node("r0"));
  }
}

TEST(ExtractFilters, DanglingBindingFailsClosed) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  cfg.devices.at("r0").find_interface("to-r1")->acl_out = "NO-SUCH-ACL";
  const auto rules = extract_filter_rules(t, cfg);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_FALSE(rules.begin()->first.permit);
  EXPECT_FALSE(rules.begin()->first.inbound);
}

TEST(ExtractFilters, UnboundAclsIgnored) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  config::Acl acl;
  acl.name = "UNUSED";
  acl.rules.push_back({});
  cfg.devices.at("r0").acls["UNUSED"] = acl;
  EXPECT_TRUE(extract_filter_rules(t, cfg).empty());
}

}  // namespace
}  // namespace rcfg::routing
