#include "explain/provenance.h"

#include <gtest/gtest.h>

#include "config/builders.h"
#include "topo/generators.h"

namespace rcfg::explain {
namespace {

BatchRecord record_with_label(std::string label) {
  BatchRecord rec;
  rec.label = std::move(label);
  return rec;
}

TEST(ProvenanceLog, SequencesFromOneAndFinds) {
  ProvenanceLog log(8);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.capacity(), 8u);

  const std::uint64_t a = log.record(record_with_label("open"));
  const std::uint64_t b = log.record(record_with_label("propose"));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(log.size(), 2u);

  ASSERT_NE(log.find(1), nullptr);
  EXPECT_EQ(log.find(1)->label, "open");
  EXPECT_EQ(log.find(2)->label, "propose");
  EXPECT_EQ(log.find(3), nullptr);
  EXPECT_EQ(log.latest()->seq, 2u);
  EXPECT_EQ(log.newest(0).seq, 2u);
  EXPECT_EQ(log.newest(1).seq, 1u);
}

TEST(ProvenanceLog, RingEvictsOldestButKeepsSequence) {
  ProvenanceLog log(2);
  log.record(record_with_label("open"));
  log.record(record_with_label("propose"));
  const std::uint64_t c = log.record(record_with_label("abort"));

  EXPECT_EQ(c, 3u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.find(1), nullptr);  // evicted
  ASSERT_NE(log.find(2), nullptr);
  EXPECT_EQ(log.find(2)->label, "propose");
  EXPECT_EQ(log.latest()->seq, 3u);
}

TEST(ProvenanceLog, CapacityFloorsAtOne) {
  ProvenanceLog log(0);
  EXPECT_EQ(log.capacity(), 1u);
  log.record(record_with_label("open"));
  log.record(record_with_label("propose"));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.latest()->label, "propose");
}

TEST(BatchRecord, ConfigDiffIsLazyAndCached) {
  const topo::Topology t = topo::make_ring(3);
  BatchRecord rec;
  rec.old_config = config::build_ospf_network(t);
  rec.new_config = rec.old_config;
  config::fail_link(rec.new_config, t, 0);

  const auto& diffs = rec.config_diff();
  ASSERT_EQ(diffs.size(), 2u);  // both endpoints of the failed link
  bool saw_shutdown = false;
  for (const config::DeviceDiff& d : diffs) {
    for (const config::LineEdit& e : d.edits) {
      if (e.text.find("shutdown") != std::string::npos) saw_shutdown = true;
    }
  }
  EXPECT_TRUE(saw_shutdown);
  // Second call returns the cached vector, not a recomputation.
  EXPECT_EQ(&rec.config_diff(), &diffs);
}

TEST(BatchRecord, IdenticalConfigsDiffEmpty) {
  const topo::Topology t = topo::make_ring(3);
  BatchRecord rec;
  rec.old_config = config::build_ospf_network(t);
  rec.new_config = rec.old_config;
  EXPECT_TRUE(rec.config_diff().empty());
}

}  // namespace
}  // namespace rcfg::explain
