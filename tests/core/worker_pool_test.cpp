#include "core/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace rcfg::core {
namespace {

TEST(WorkerPool, SizeClampsToAtLeastOne) {
  EXPECT_EQ(WorkerPool(0).size(), 1u);
  EXPECT_EQ(WorkerPool(1).size(), 1u);
  EXPECT_EQ(WorkerPool(4).size(), 4u);
}

TEST(WorkerPool, RunsEveryShardExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u}) {
    WorkerPool pool(threads);
    // Shard counts below, at, and above the pool width, plus zero.
    for (const std::size_t shards : {0u, 1u, 3u, 4u, 17u}) {
      std::vector<std::atomic<int>> hits(shards);
      pool.run(shards, [&hits](std::size_t s) {
        hits[s].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(hits[s].load(), 1) << "threads=" << threads << " shard " << s;
      }
    }
  }
}

TEST(WorkerPool, ReusableAcrossManyDispatches) {
  WorkerPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.run(8, [&total](std::size_t s) {
      total.fetch_add(static_cast<long>(s), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(WorkerPool, ResultsLandInCallerVisibleSlots) {
  // run() must be a full barrier: writes from worker threads are visible
  // to the caller afterwards without extra synchronisation.
  WorkerPool pool(4);
  std::vector<int> out(64, 0);
  pool.run(out.size(), [&out](std::size_t s) { out[s] = static_cast<int>(s) * 3; });
  for (std::size_t s = 0; s < out.size(); ++s) {
    ASSERT_EQ(out[s], static_cast<int>(s) * 3);
  }
}

}  // namespace
}  // namespace rcfg::core
