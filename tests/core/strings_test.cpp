#include "core/strings.h"

#include <gtest/gtest.h>

namespace rcfg::core {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, SingleFieldWhenNoDelimiter) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyInputGivesOneEmptyField) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWs, DropsEmptyTokens) {
  auto parts = split_ws("  ip   route 10.0.0.0/8 \t eth0  ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "ip");
  EXPECT_EQ(parts[1], "route");
  EXPECT_EQ(parts[2], "10.0.0.0/8");
  EXPECT_EQ(parts[3], "eth0");
}

TEST(SplitWs, EmptyAndBlankInputs) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t\n ").empty());
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("hostname r1", "hostname "));
  EXPECT_FALSE(starts_with("host", "hostname"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(ParseU64, AcceptsDigitsOnly) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12a", v));
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64(" 1", v));
}

}  // namespace
}  // namespace rcfg::core
