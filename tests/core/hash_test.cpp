#include "core/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace rcfg::core {
namespace {

TEST(TupleHash, PairsAndTuples) {
  TupleHash h;
  const auto p1 = std::make_pair(1, 2);
  const auto p2 = std::make_pair(2, 1);
  EXPECT_NE(h(p1), h(p2));  // order matters
  EXPECT_EQ(h(p1), h(std::make_pair(1, 2)));

  const auto t1 = std::make_tuple(std::string{"a"}, 1, 2u);
  EXPECT_EQ(h(t1), h(std::make_tuple(std::string{"a"}, 1, 2u)));
}

TEST(TupleHash, Vectors) {
  TupleHash h;
  const std::vector<int> a{1, 2, 3};
  const std::vector<int> b{3, 2, 1};
  const std::vector<int> c{1, 2, 3};
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(h(a), h(c));
  EXPECT_NE(h(std::vector<int>{}), h(std::vector<int>{0}));
}

TEST(TupleHash, NestedStructures) {
  TupleHash h;
  const auto nested1 = std::make_pair(std::vector<int>{1, 2}, std::string{"x"});
  const auto nested2 = std::make_pair(std::vector<int>{1, 2}, std::string{"y"});
  EXPECT_NE(h(nested1), h(nested2));
}

TEST(HashAll, SensitiveToEveryField) {
  EXPECT_NE(hash_all(1, 2, 3), hash_all(1, 2, 4));
  EXPECT_NE(hash_all(1, 2, 3), hash_all(3, 2, 1));
  EXPECT_EQ(hash_all(1, 2, 3), hash_all(1, 2, 3));
}

TEST(Mix64, SpreadsSmallInputs) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

}  // namespace
}  // namespace rcfg::core
