#include "core/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace rcfg::core {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r{9};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r{3};
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r{11};
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolEdgeProbabilities) {
  Rng r{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng r{17};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rcfg::core
