#include "verify/trace.h"

#include <gtest/gtest.h>

#include "config/builders.h"
#include "core/rng.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

namespace rcfg::verify {
namespace {

config::Flow flow_to(topo::NodeId dst_node, config::IpProto proto = config::IpProto::kUdp,
                     std::uint16_t dport = 0) {
  config::Flow f;
  f.src = *net::Ipv4Addr::parse("192.0.2.1");
  f.dst = config::host_prefix(dst_node).first();
  f.proto = proto;
  f.dst_port = dport;
  return f;
}

TEST(Trace, DeliveredWithMatchedRules) {
  const topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  const topo::NodeId n2 = t.find_node("n2-0");
  const FlowTrace trace = trace_flow(t, rc.model(), flow_to(n2), t.find_node("n0-0"));
  ASSERT_EQ(trace.branches.size(), 1u);
  EXPECT_EQ(trace.branches[0].disposition, Disposition::kDelivered);
  ASSERT_EQ(trace.branches[0].hops.size(), 3u);
  // Every transit hop matched the destination /24.
  for (const TraceHop& hop : trace.branches[0].hops) {
    ASSERT_TRUE(hop.matched_prefix.has_value());
    EXPECT_EQ(*hop.matched_prefix, config::host_prefix(n2));
  }
  EXPECT_TRUE(trace.all_delivered());

  const std::string text = to_string(trace, t);
  EXPECT_NE(text.find("delivered"), std::string::npos);
  EXPECT_NE(text.find("n1-0"), std::string::npos);
}

TEST(Trace, EcmpFansOut) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  const FlowTrace trace =
      trace_flow(t, rc.model(), flow_to(t.find_node("edge1-0")), t.find_node("edge0-0"));
  EXPECT_GE(trace.branches.size(), 2u);  // two aggregation choices at least
  EXPECT_TRUE(trace.all_delivered());
}

TEST(Trace, NoRouteReported) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_bgp_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  config::Flow f;
  f.dst = *net::Ipv4Addr::parse("198.18.0.1");  // nobody owns this
  const FlowTrace trace = trace_flow(t, rc.model(), f, 0);
  ASSERT_EQ(trace.branches.size(), 1u);
  EXPECT_EQ(trace.branches[0].disposition, Disposition::kNoRoute);
  EXPECT_FALSE(trace.branches[0].hops[0].matched_prefix.has_value());
}

TEST(Trace, ExplicitDropReported) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  const auto victim = *net::Ipv4Prefix::parse("203.0.113.0/24");
  cfg.devices.at("r1").static_routes.push_back({victim, "null0", 1});
  cfg.devices.at("r0").static_routes.push_back({victim, "to-r1", 1});
  RealConfig rc(t);
  rc.apply(cfg);

  config::Flow f;
  f.dst = victim.first();
  const FlowTrace trace = trace_flow(t, rc.model(), f, t.find_node("r0"));
  ASSERT_EQ(trace.branches.size(), 1u);
  EXPECT_EQ(trace.branches[0].disposition, Disposition::kDropped);
  EXPECT_EQ(trace.branches[0].hops.back().node, t.find_node("r1"));
}

TEST(Trace, LoopReported) {
  const topo::Topology t = topo::make_ring(3);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  const auto victim = *net::Ipv4Prefix::parse("203.0.113.0/24");
  cfg.devices.at("r0").static_routes.push_back({victim, "to-r1", 1});
  cfg.devices.at("r1").static_routes.push_back({victim, "to-r0", 1});
  RealConfig rc(t);
  rc.apply(cfg);

  config::Flow f;
  f.dst = victim.first();
  const FlowTrace trace = trace_flow(t, rc.model(), f, t.find_node("r0"));
  ASSERT_EQ(trace.branches.size(), 1u);
  EXPECT_EQ(trace.branches[0].disposition, Disposition::kLoop);
}

TEST(Trace, AclDecisionsRecorded) {
  const topo::Topology t = topo::make_grid(2, 1);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  // n1 blocks telnet inbound on its n0-facing interface.
  auto& dev = cfg.devices.at("n1-0");
  config::Acl acl;
  acl.name = "A";
  config::AclRule deny;
  deny.seq = 10;
  deny.action = config::Action::kDeny;
  deny.proto = config::IpProto::kTcp;
  deny.dst_ports = {23, 23};
  acl.rules.push_back(deny);
  config::AclRule permit;
  permit.seq = 20;
  acl.rules.push_back(permit);
  dev.acls["A"] = acl;
  dev.find_interface("to-n0-0")->acl_in = "A";

  RealConfig rc(t);
  rc.apply(cfg);

  const topo::NodeId n1 = t.find_node("n1-0");
  const topo::NodeId n0 = t.find_node("n0-0");

  // Telnet is filtered at n1's ingress; the deciding rule is the deny.
  const FlowTrace telnet =
      trace_flow(t, rc.model(), flow_to(n1, config::IpProto::kTcp, 23), n0);
  ASSERT_EQ(telnet.branches.size(), 1u);
  EXPECT_EQ(telnet.branches[0].disposition, Disposition::kFilteredIn);
  ASSERT_TRUE(telnet.branches[0].hops.back().ingress_acl_rule.has_value());
  EXPECT_FALSE(telnet.branches[0].hops.back().ingress_acl_rule->permit);

  // HTTP sails through, with the permit rule recorded.
  const FlowTrace http = trace_flow(t, rc.model(), flow_to(n1, config::IpProto::kTcp, 80), n0);
  EXPECT_TRUE(http.all_delivered());
  ASSERT_TRUE(http.branches[0].hops.front().ingress_acl_rule.has_value());
  EXPECT_TRUE(http.branches[0].hops.front().ingress_acl_rule->permit);
}

TEST(Trace, AgreesWithCheckerReachability) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_bgp_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  core::Rng rng{123};
  for (int probe = 0; probe < 30; ++probe) {
    const auto s = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
    const auto d = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
    if (s == d) continue;
    const FlowTrace trace = trace_flow(t, rc.model(), flow_to(d), s);
    const dpm::EcId ec =
        rc.ecs().ec_of(rc.packet_space().dst_prefix(config::host_prefix(d)));
    EXPECT_EQ(trace.any_delivered(), rc.checker().reachable(s, d, ec))
        << t.node(s).name << " -> " << t.node(d).name;
  }
}

}  // namespace
}  // namespace rcfg::verify
