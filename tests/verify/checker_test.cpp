#include "verify/checker.h"

#include <gtest/gtest.h>

#include "config/builders.h"
#include "routing/generator.h"
#include "topo/generators.h"

namespace rcfg::verify {
namespace {

/// Test rig: generator -> model -> checker, glued like RealConfig but with
/// the pieces exposed.
struct Rig {
  topo::Topology topo;
  config::NetworkConfig cfg;
  routing::IncrementalGenerator gen;
  dpm::PacketSpace space;
  dpm::EcManager ecs;
  dpm::NetworkModel model;
  IncrementalChecker checker;

  explicit Rig(topo::Topology t, config::NetworkConfig c)
      : topo(std::move(t)),
        cfg(std::move(c)),
        gen(topo),
        ecs(space),
        model(space, ecs, topo.node_count()),
        checker(topo, space, ecs, model) {}

  CheckResult step(dpm::UpdateOrder order = dpm::UpdateOrder::kInsertFirst) {
    return checker.process(model.apply_batch(gen.apply(cfg), order));
  }

  dpm::EcId ec_of_host(const char* node) {
    return ecs.ec_of(space.dst_prefix(config::host_prefix(topo.find_node(node))));
  }
};

Rig ospf_ring(unsigned n) {
  topo::Topology t = topo::make_ring(n);
  config::NetworkConfig c = config::build_ospf_network(t);
  return Rig(std::move(t), std::move(c));
}

TEST(Checker, AllPairsReachableOnHealthyRing) {
  Rig rig = ospf_ring(4);
  const CheckResult r = rig.step();
  EXPECT_FALSE(r.affected_ecs.empty());
  EXPECT_FALSE(r.affected_pairs.empty());

  for (topo::NodeId s = 0; s < 4; ++s) {
    for (topo::NodeId d = 0; d < 4; ++d) {
      if (s == d) continue;
      const dpm::EcId ec =
          rig.ecs.ec_of(rig.space.dst_prefix(config::host_prefix(d)));
      EXPECT_TRUE(rig.checker.reachable(s, d, ec)) << s << "->" << d;
    }
  }
  EXPECT_EQ(rig.checker.loop_count(), 0u);
  EXPECT_EQ(rig.checker.blackhole_count(), 0u);
}

TEST(Checker, PairCountMatchesCombinatorics) {
  Rig rig = ospf_ring(4);
  rig.step();
  // Every ordered pair (s, d), s != d, has at least the host-prefix EC of d
  // (plus /31 link ECs contributing more ECs but no new pairs).
  EXPECT_EQ(rig.checker.pair_count(), 4u * 3u);
}

TEST(Checker, LinkFailureAffectsOnlyImpactedPairsAndFlipsBack) {
  Rig rig = ospf_ring(5);
  rig.step();
  const std::size_t pairs_before = rig.checker.pair_count();

  config::fail_link(rig.cfg, rig.topo, 0);  // r0 -- r1
  const CheckResult r = rig.step();
  // The ring stays connected: pairs survive via the long way round.
  EXPECT_EQ(rig.checker.pair_count(), pairs_before);
  EXPECT_FALSE(r.affected_ecs.empty());
  // Only a subset of ECs is affected (the /31 of the dead link at least).
  EXPECT_LT(r.affected_ecs.size(), rig.ecs.ec_count());

  config::restore_link(rig.cfg, rig.topo, 0);
  rig.step();
  EXPECT_EQ(rig.checker.pair_count(), pairs_before);
}

TEST(Checker, PartitionRemovesPairs) {
  // Chain n0 - n1 - n2: failing n1--n2 cuts n2 off entirely.
  topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig c = config::build_ospf_network(t);
  Rig rig(std::move(t), std::move(c));
  rig.step();
  const topo::NodeId n0 = rig.topo.find_node("n0-0");
  const topo::NodeId n2 = rig.topo.find_node("n2-0");
  EXPECT_TRUE(rig.checker.reachable(n0, n2, rig.ec_of_host("n2-0")));

  config::fail_link(rig.cfg, rig.topo, 1);
  const CheckResult r = rig.step();
  EXPECT_FALSE(rig.checker.reachable(n0, n2, rig.ec_of_host("n2-0")));
  EXPECT_FALSE(r.affected_pairs.empty());
}

TEST(Checker, StaticRouteLoopDetected) {
  Rig rig = ospf_ring(3);
  const auto victim = *net::Ipv4Prefix::parse("203.0.113.0/24");
  rig.cfg.devices.at("r0").static_routes.push_back({victim, "to-r1", 1});
  rig.cfg.devices.at("r1").static_routes.push_back({victim, "to-r0", 1});
  const CheckResult r = rig.step();
  EXPECT_EQ(rig.checker.loop_count(), 1u);
  ASSERT_EQ(r.loops_begun.size(), 1u);

  // Fixing one side ends the loop (r1 now drops: a blackhole instead).
  rig.cfg.devices.at("r1").static_routes.clear();
  const CheckResult r2 = rig.step();
  EXPECT_EQ(rig.checker.loop_count(), 0u);
  ASSERT_EQ(r2.loops_ended.size(), 1u);
  EXPECT_EQ(rig.checker.blackhole_count(), 1u);
}

TEST(Checker, BlackholeDetected) {
  Rig rig = ospf_ring(3);
  const auto victim = *net::Ipv4Prefix::parse("203.0.113.0/24");
  // r0 forwards the victim prefix to r1, which has no route for it.
  rig.cfg.devices.at("r0").static_routes.push_back({victim, "to-r1", 1});
  const CheckResult r = rig.step();
  EXPECT_EQ(rig.checker.blackhole_count(), 1u);
  EXPECT_EQ(r.blackholes_begun.size(), 1u);

  rig.cfg.devices.at("r0").static_routes.clear();
  const CheckResult r2 = rig.step();
  EXPECT_EQ(rig.checker.blackhole_count(), 0u);
  EXPECT_EQ(r2.blackholes_ended.size(), 1u);
}

TEST(Checker, ReachabilityPolicyLifecycle) {
  topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig c = config::build_ospf_network(t);
  Rig rig(std::move(t), std::move(c));
  rig.step();

  const topo::NodeId n0 = rig.topo.find_node("n0-0");
  const topo::NodeId n2 = rig.topo.find_node("n2-0");
  const PolicyId pid = rig.checker.add_reachability(
      n0, n2, rig.space.dst_prefix(config::host_prefix(n2)), "n0 reaches n2 hosts");
  EXPECT_TRUE(rig.checker.policy_satisfied(pid));

  config::fail_link(rig.cfg, rig.topo, 1);
  const CheckResult r = rig.step();
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].id, pid);
  EXPECT_FALSE(r.events[0].satisfied);
  EXPECT_FALSE(rig.checker.policy_satisfied(pid));

  // The paper: "policies that become satisfied ... helps operators test
  // whether a repair plan works."
  config::restore_link(rig.cfg, rig.topo, 1);
  const CheckResult r2 = rig.step();
  ASSERT_EQ(r2.events.size(), 1u);
  EXPECT_TRUE(r2.events[0].satisfied);
}

TEST(Checker, IsolationPolicyWithAcl) {
  Rig rig = ospf_ring(3);
  rig.step();
  const topo::NodeId r0 = rig.topo.find_node("r0");
  const topo::NodeId r2 = rig.topo.find_node("r2");

  const PolicyId pid = rig.checker.add_isolation(
      r0, r2, rig.space.dst_prefix(config::host_prefix(r2)), "r0 isolated from r2");
  EXPECT_FALSE(rig.checker.policy_satisfied(pid));  // healthy net: reachable

  // Deny everything inbound on both of r2's transit interfaces.
  for (const char* iface : {"to-r0", "to-r1"}) {
    auto& dev = rig.cfg.devices.at("r2");
    config::Acl acl;
    acl.name = std::string("DENY-") + iface;
    config::AclRule deny;
    deny.seq = 10;
    deny.action = config::Action::kDeny;
    acl.rules.push_back(deny);
    dev.acls[acl.name] = acl;
    dev.find_interface(iface)->acl_in = acl.name;
  }
  const CheckResult r = rig.step();
  EXPECT_TRUE(rig.checker.policy_satisfied(pid));
  bool flipped = false;
  for (const auto& e : r.events) flipped |= (e.id == pid && e.satisfied);
  EXPECT_TRUE(flipped);
}

TEST(Checker, WaypointPolicy) {
  // Chain n0 - n1 - n2: all n0->n2 traffic crosses n1. A ring would not.
  topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig c = config::build_ospf_network(t);
  Rig rig(std::move(t), std::move(c));
  rig.step();
  const topo::NodeId n0 = rig.topo.find_node("n0-0");
  const topo::NodeId n1 = rig.topo.find_node("n1-0");
  const topo::NodeId n2 = rig.topo.find_node("n2-0");
  const PolicyId pid = rig.checker.add_waypoint(
      n0, n2, n1, rig.space.dst_prefix(config::host_prefix(n2)), "via n1");
  EXPECT_TRUE(rig.checker.policy_satisfied(pid));
}

TEST(Checker, WaypointViolatedByEcmpBypass) {
  Rig rig = ospf_ring(4);
  rig.step();
  const topo::NodeId r0 = rig.topo.find_node("r0");
  const topo::NodeId r1 = rig.topo.find_node("r1");
  const topo::NodeId r2 = rig.topo.find_node("r2");
  // r0 -> r2 has two equal-cost paths (via r1 and via r3): requiring the r1
  // waypoint must fail.
  const PolicyId pid = rig.checker.add_waypoint(
      r0, r2, r1, rig.space.dst_prefix(config::host_prefix(r2)), "via r1");
  EXPECT_FALSE(rig.checker.policy_satisfied(pid));

  // Failing the bypass link (r3 -- r0... link r0-r3 is id 3) forces all
  // traffic through r1: the policy becomes satisfied.
  config::fail_link(rig.cfg, rig.topo, 3);
  const CheckResult r = rig.step();
  EXPECT_TRUE(rig.checker.policy_satisfied(pid));
  bool flipped = false;
  for (const auto& e : r.events) flipped |= (e.id == pid && e.satisfied);
  EXPECT_TRUE(flipped);
}

TEST(Checker, TraceEnumeratesEcmpPaths) {
  topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig c = config::build_ospf_network(t);
  Rig rig(std::move(t), std::move(c));
  rig.step();
  const topo::NodeId src = rig.topo.find_node("edge0-0");
  const dpm::EcId ec = rig.ec_of_host("edge1-0");
  const auto paths = rig.checker.trace(src, ec);
  ASSERT_FALSE(paths.empty());
  EXPECT_GE(paths.size(), 2u);  // at least the two aggregation choices
  const topo::NodeId dst = rig.topo.find_node("edge1-0");
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), src);
    EXPECT_EQ(p.back(), dst);
  }
}

TEST(Checker, OnlyRegisteredPoliciesReevaluated) {
  Rig rig = ospf_ring(4);
  rig.step();
  const topo::NodeId r0 = rig.topo.find_node("r0");
  const topo::NodeId r2 = rig.topo.find_node("r2");
  // Policy on a prefix that no change will touch.
  const PolicyId quiet = rig.checker.add_isolation(
      r0, r2, rig.space.dst_prefix(*net::Ipv4Prefix::parse("198.51.100.0/24")), "quiet");
  EXPECT_TRUE(rig.checker.policy_satisfied(quiet));

  config::set_ospf_cost(rig.cfg, "r0", "to-r1", 10);
  const CheckResult r = rig.step();
  for (const auto& e : r.events) EXPECT_NE(e.id, quiet);
  EXPECT_TRUE(rig.checker.policy_satisfied(quiet));
}

}  // namespace
}  // namespace rcfg::verify
