#include "verify/failures.h"

#include <gtest/gtest.h>

#include "config/builders.h"
#include "topo/generators.h"

namespace rcfg::verify {
namespace {

TEST(FailureSweep, FatTreeSurvivesEverySingleFailure) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  const FailureSweepResult r = sweep_single_link_failures(rc, cfg);
  EXPECT_EQ(r.scenarios, t.link_count());
  // Host-prefix reachability is fully fault tolerant in a fat tree; only
  // the failed link's own /31 pairs disappear, so some pairs drop out of
  // the spec but no host pair does.
  EXPECT_FALSE(r.fault_tolerant_pairs.empty());
  EXPECT_LE(r.fault_tolerant_pairs.size(), r.healthy_pairs.size());
  EXPECT_TRUE(r.loop_scenarios.empty());

  // Host-to-host pairs all survive.
  std::size_t host_pairs = 0;
  for (const auto& [s, d] : r.fault_tolerant_pairs) {
    (void)s;
    (void)d;
    ++host_pairs;
  }
  EXPECT_GE(host_pairs, t.node_count() * (t.node_count() - 1) / 2);

  // The sweep leaves the verifier healthy.
  EXPECT_EQ(rc.checker().reachable_pairs(), r.healthy_pairs);
}

TEST(FailureSweep, ChainHasOnlyCriticalLinks) {
  const topo::Topology t = topo::make_grid(4, 1);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  const FailureSweepResult r = sweep_single_link_failures(rc, cfg);
  // Every link in a chain is a cut edge.
  EXPECT_EQ(r.critical_links.size(), t.link_count());
  // No pair survives every failure (each pair is cut by some link).
  EXPECT_TRUE(r.fault_tolerant_pairs.empty());
}

TEST(FailureSweep, RingToleratesAnySingleFailure) {
  const topo::Topology t = topo::make_ring(5);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  const FailureSweepResult r = sweep_single_link_failures(rc, cfg);
  // Host pairs survive (ring reroutes); only the dead link's /31 pairs drop,
  // which marks every link critical-for-its-own-subnet.
  std::size_t host_pair_count = 0;
  for (const auto& [s, d] : r.fault_tolerant_pairs) {
    if (config::host_prefix(d).address().bits() >> 24 == 10) ++host_pair_count;
  }
  EXPECT_EQ(host_pair_count, 5u * 4u);
}

TEST(FailureSweep, PolicyViolationsNameTheScenario) {
  const topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  const PolicyId pid =
      rc.require_reachable("n0-0", "n2-0", config::host_prefix(t.find_node("n2-0")));

  const FailureSweepResult r = sweep_single_link_failures(rc, cfg);
  ASSERT_TRUE(r.policy_violations.contains(pid));
  // Both chain links break the policy.
  EXPECT_EQ(r.policy_violations.at(pid).size(), 2u);
  // And the verifier is healthy again afterwards.
  EXPECT_TRUE(rc.checker().policy_satisfied(pid));
}

TEST(FailureSweep, SubsetOfLinks) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig cfg = config::build_bgp_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  const FailureSweepResult r = sweep_single_link_failures(rc, cfg, {0, 2});
  EXPECT_EQ(r.scenarios, 2u);
}

// ---------------------------------------------------------------------------
// Divergent scenarios and the snapshot-fork sweep
// ---------------------------------------------------------------------------

/// Griffin's BAD GADGET on full_mesh(4), stabilized: m1's strong preference
/// for its direct route from m0 breaks the dispute wheel, so the healthy
/// configuration converges — but failing link m0–m1 removes exactly that
/// route and re-exposes the oscillation.
config::NetworkConfig stabilized_gadget(const topo::Topology& t) {
  config::NetworkConfig cfg = config::build_bgp_network(t);
  for (unsigned i = 1; i <= 3; ++i) {
    cfg.devices.at("m" + std::to_string(i)).bgp->networks.clear();
  }
  config::set_local_pref(cfg, "m1", "to-m2", 200);
  config::set_local_pref(cfg, "m2", "to-m3", 200);
  config::set_local_pref(cfg, "m3", "to-m1", 200);
  config::set_local_pref(cfg, "m1", "to-m0", 300);
  return cfg;
}

topo::LinkId link_between(const topo::Topology& t, const std::string& a,
                          const std::string& b) {
  for (topo::LinkId l = 0; l < t.link_count(); ++l) {
    const auto& lk = t.link(l);
    const std::string& na = t.node(lk.a).name;
    const std::string& nb = t.node(lk.b).name;
    if ((na == a && nb == b) || (na == b && nb == a)) return l;
  }
  throw std::logic_error("no link " + a + "-" + b);
}

void prime_gadget_verifier(RealConfig& rc, const config::NetworkConfig& healthy) {
  rc.generator().set_flush_budget(2'000'000);
  rc.generator().set_recurrence_threshold(500);
  rc.apply(healthy);
}

TEST(FailureSweep, DivergentScenarioIsRecordedNotFatal) {
  const topo::Topology t = topo::make_full_mesh(4);
  const config::NetworkConfig healthy = stabilized_gadget(t);
  RealConfig rc(t);
  prime_gadget_verifier(rc, healthy);
  const topo::LinkId bad = link_between(t, "m0", "m1");

  const FailureSweepResult r = sweep_single_link_failures(rc, healthy);
  EXPECT_EQ(r.scenarios, t.link_count());
  ASSERT_EQ(r.diverged_links, std::vector<topo::LinkId>{bad});
  ASSERT_EQ(r.outcomes.size(), t.link_count());
  for (const ScenarioOutcome& out : r.outcomes) {
    EXPECT_EQ(out.diverged, out.scenario.links.front() == bad);
  }

  // The satellite bugfix: the sweep must not leave the verifier poisoned —
  // the divergent scenario was rolled back to the healthy snapshot.
  EXPECT_FALSE(rc.poisoned());
  EXPECT_EQ(rc.checker().reachable_pairs(), r.healthy_pairs);
  EXPECT_NO_THROW(rc.apply(healthy));
}

TEST(FailureSweep, ForkSweepAgreesWithReconvergeSweep) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  rc.require_reachable("edge0-0", "edge1-1", config::host_prefix(t.find_node("edge1-1")));

  const FailureSweepResult serial = sweep_single_link_failures(rc, cfg);

  for (const unsigned threads : {1u, 2u}) {
    FailureSweepOptions options;
    options.threads = threads;
    const FailureSweepResult forked = sweep_failures(rc, cfg, options);

    EXPECT_EQ(forked.scenarios, serial.scenarios);
    EXPECT_EQ(forked.healthy_pairs, serial.healthy_pairs);
    EXPECT_EQ(forked.fault_tolerant_pairs, serial.fault_tolerant_pairs);
    EXPECT_EQ(forked.critical_links, serial.critical_links);
    EXPECT_EQ(forked.policy_violations, serial.policy_violations);
    EXPECT_EQ(forked.loop_scenarios, serial.loop_scenarios);
    EXPECT_EQ(forked.diverged_links, serial.diverged_links);
    ASSERT_EQ(forked.outcomes.size(), serial.outcomes.size());
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      const ScenarioOutcome& a = serial.outcomes[i];
      const ScenarioOutcome& b = forked.outcomes[i];
      EXPECT_EQ(b.scenario, a.scenario) << "scenario " << i;
      EXPECT_EQ(b.diverged, a.diverged);
      EXPECT_EQ(b.reachable_pairs, a.reachable_pairs);
      EXPECT_EQ(b.pairs_lost, a.pairs_lost);
      EXPECT_EQ(b.violated, a.violated);
      EXPECT_EQ(b.gained_loop, a.gained_loop);
    }
  }
  // The fork sweep never touched the caller's verifier.
  EXPECT_EQ(rc.checker().reachable_pairs(), serial.healthy_pairs);
}

TEST(FailureSweep, ForkSweepRecordsDivergenceWithoutTouchingParent) {
  const topo::Topology t = topo::make_full_mesh(4);
  const config::NetworkConfig healthy = stabilized_gadget(t);
  RealConfig rc(t);
  prime_gadget_verifier(rc, healthy);
  const topo::LinkId bad = link_between(t, "m0", "m1");

  FailureSweepOptions options;
  options.threads = 2;
  const FailureSweepResult r = sweep_failures(rc, healthy, options);
  EXPECT_EQ(r.diverged_links, std::vector<topo::LinkId>{bad});
  EXPECT_FALSE(rc.poisoned());
  EXPECT_EQ(rc.checker().reachable_pairs(), r.healthy_pairs);
}

TEST(FailureSweep, MaxFailuresTwoCoversEveryPair) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  FailureSweepOptions options;
  options.max_failures = 2;
  const FailureSweepResult r = sweep_failures(rc, cfg, options);
  const std::size_t n = t.link_count();
  ASSERT_EQ(r.scenarios, n + n * (n - 1) / 2);
  // Singles first, then pairs; link-keyed aggregates only see the singles.
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(r.outcomes[i].scenario.links.size(), 1u);
  for (std::size_t i = n; i < r.outcomes.size(); ++i) {
    EXPECT_EQ(r.outcomes[i].scenario.links.size(), 2u);
  }
  // A ring survives any single failure but is partitioned by any two
  // non-adjacent failures, so the two-failure spec is strictly smaller.
  const FailureSweepResult singles = sweep_failures(rc, cfg, {});
  EXPECT_LT(r.fault_tolerant_pairs.size(), singles.fault_tolerant_pairs.size());
}

}  // namespace
}  // namespace rcfg::verify
