#include "verify/failures.h"

#include <gtest/gtest.h>

#include "config/builders.h"
#include "topo/generators.h"

namespace rcfg::verify {
namespace {

TEST(FailureSweep, FatTreeSurvivesEverySingleFailure) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  const FailureSweepResult r = sweep_single_link_failures(rc, cfg);
  EXPECT_EQ(r.scenarios, t.link_count());
  // Host-prefix reachability is fully fault tolerant in a fat tree; only
  // the failed link's own /31 pairs disappear, so some pairs drop out of
  // the spec but no host pair does.
  EXPECT_FALSE(r.fault_tolerant_pairs.empty());
  EXPECT_LE(r.fault_tolerant_pairs.size(), r.healthy_pairs.size());
  EXPECT_TRUE(r.loop_scenarios.empty());

  // Host-to-host pairs all survive.
  std::size_t host_pairs = 0;
  for (const auto& [s, d] : r.fault_tolerant_pairs) {
    (void)s;
    (void)d;
    ++host_pairs;
  }
  EXPECT_GE(host_pairs, t.node_count() * (t.node_count() - 1) / 2);

  // The sweep leaves the verifier healthy.
  EXPECT_EQ(rc.checker().reachable_pairs(), r.healthy_pairs);
}

TEST(FailureSweep, ChainHasOnlyCriticalLinks) {
  const topo::Topology t = topo::make_grid(4, 1);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  const FailureSweepResult r = sweep_single_link_failures(rc, cfg);
  // Every link in a chain is a cut edge.
  EXPECT_EQ(r.critical_links.size(), t.link_count());
  // No pair survives every failure (each pair is cut by some link).
  EXPECT_TRUE(r.fault_tolerant_pairs.empty());
}

TEST(FailureSweep, RingToleratesAnySingleFailure) {
  const topo::Topology t = topo::make_ring(5);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  const FailureSweepResult r = sweep_single_link_failures(rc, cfg);
  // Host pairs survive (ring reroutes); only the dead link's /31 pairs drop,
  // which marks every link critical-for-its-own-subnet.
  std::size_t host_pair_count = 0;
  for (const auto& [s, d] : r.fault_tolerant_pairs) {
    if (config::host_prefix(d).address().bits() >> 24 == 10) ++host_pair_count;
  }
  EXPECT_EQ(host_pair_count, 5u * 4u);
}

TEST(FailureSweep, PolicyViolationsNameTheScenario) {
  const topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  const PolicyId pid =
      rc.require_reachable("n0-0", "n2-0", config::host_prefix(t.find_node("n2-0")));

  const FailureSweepResult r = sweep_single_link_failures(rc, cfg);
  ASSERT_TRUE(r.policy_violations.contains(pid));
  // Both chain links break the policy.
  EXPECT_EQ(r.policy_violations.at(pid).size(), 2u);
  // And the verifier is healthy again afterwards.
  EXPECT_TRUE(rc.checker().policy_satisfied(pid));
}

TEST(FailureSweep, SubsetOfLinks) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig cfg = config::build_bgp_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  const FailureSweepResult r = sweep_single_link_failures(rc, cfg, {0, 2});
  EXPECT_EQ(r.scenarios, 2u);
}

}  // namespace
}  // namespace rcfg::verify
