#include "verify/sweep_space.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "config/builders.h"
#include "topo/generators.h"
#include "verify/failures.h"

namespace rcfg::verify {
namespace {

FailureSweepOptions opts(unsigned max_failures, bool prune, bool symmetry,
                         std::uint64_t budget = 0, unsigned threads = 1) {
  FailureSweepOptions o;
  o.max_failures = max_failures;
  o.prune = prune;
  o.symmetry = symmetry;
  o.budget = budget;
  o.threads = threads;
  return o;
}

/// Every aggregate field that must be bit-identical between an exhaustive
/// sweep and a reduced (pruned-with-full-coverage or symmetry-deduped) one.
void expect_same_aggregates(const FailureSweepResult& a, const FailureSweepResult& b) {
  EXPECT_EQ(a.healthy_pairs, b.healthy_pairs);
  EXPECT_EQ(a.fault_tolerant_pairs, b.fault_tolerant_pairs);
  EXPECT_EQ(a.critical_links, b.critical_links);
  EXPECT_EQ(a.policy_violations, b.policy_violations);
  EXPECT_EQ(a.loop_scenarios, b.loop_scenarios);
  EXPECT_EQ(a.diverged_links, b.diverged_links);
  EXPECT_EQ(a.diverged_scenarios, b.diverged_scenarios);
  EXPECT_EQ(a.scenarios, b.scenarios);
}

std::map<std::vector<topo::LinkId>, const ScenarioOutcome*> by_scenario(
    const FailureSweepResult& r) {
  std::map<std::vector<topo::LinkId>, const ScenarioOutcome*> out;
  for (const ScenarioOutcome& o : r.outcomes) out[o.scenario.links] = &o;
  return out;
}

TEST(SweepSpace, RelevanceConesOnAChain) {
  // Chain n0-0 -- n1-0 -- n2-0. A policy from n0-0 to n1-0 depends only on
  // link 0: the downstream cone of n0-0 for the policy EC never crosses
  // link 1, and no /31 link subnet overlaps the host /24 the policy names.
  const topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  rc.require_reachable("n0-0", "n1-0", config::host_prefix(t.find_node("n1-0")));

  FailureSweepOptions o = opts(1, /*prune=*/true, /*symmetry=*/false);
  const SweepSpace space(rc, cfg, o);
  EXPECT_TRUE(space.link_relevant(0));
  EXPECT_FALSE(space.link_relevant(1));
  EXPECT_EQ(space.relevant_links(), 1u);
  ASSERT_EQ(space.reps().size(), 1u);
  EXPECT_EQ(space.reps()[0].links, (std::vector<topo::LinkId>{0}));
  EXPECT_EQ(space.total_scenarios(), 2u);
  EXPECT_EQ(space.pruned_scenarios(), 1u);
  EXPECT_TRUE(space.exhausted());
}

TEST(SweepSpace, PrunedPolicyVerdictsMatchExhaustive) {
  // Full mesh m0..m3, policy m0 -> m1. Only link 0 (m0-m1) is relevant, so
  // the k<=3 space of 41 scenarios shrinks to the 16 touching link 0 — and
  // every policy verdict must still match the exhaustive sweep, including
  // the k=3 isolation scenarios that actually violate the policy.
  const topo::Topology t = topo::make_full_mesh(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  const PolicyId pid =
      rc.require_reachable("m0", "m1", config::host_prefix(t.find_node("m1")));

  const FailureSweepResult full = sweep_failures(rc, cfg, opts(3, false, false));
  const FailureSweepResult pruned = sweep_failures(rc, cfg, opts(3, true, false));

  // Accounting: everything is explored or pruned, nothing is lost.
  EXPECT_EQ(full.total_scenarios, 41u);
  EXPECT_EQ(full.explored_scenarios, 41u);
  EXPECT_EQ(pruned.total_scenarios, 41u);
  EXPECT_GT(pruned.pruned_scenarios, 0u);
  EXPECT_EQ(pruned.explored_scenarios + pruned.pruned_scenarios, pruned.total_scenarios);
  EXPECT_DOUBLE_EQ(pruned.coverage, 1.0);

  // The single-link policy aggregate is exact under pruning.
  EXPECT_EQ(full.policy_violations, pruned.policy_violations);

  // Outcome-level: every explored scenario reports verdicts identical to
  // its exhaustive counterpart; every pruned scenario was policy-silent in
  // the exhaustive sweep (the soundness claim, checked directly).
  const auto full_by = by_scenario(full);
  const auto pruned_by = by_scenario(pruned);
  bool saw_violation = false;
  for (const auto& [links, out] : pruned_by) {
    const auto it = full_by.find(links);
    ASSERT_NE(it, full_by.end());
    EXPECT_EQ(out->violated, it->second->violated);
    EXPECT_EQ(out->pairs_lost, it->second->pairs_lost);
    EXPECT_EQ(out->gained_loop, it->second->gained_loop);
    EXPECT_EQ(out->diverged, it->second->diverged);
    saw_violation = saw_violation || !out->violated.empty();
  }
  EXPECT_TRUE(saw_violation);  // the k=3 isolations must be in the kept set
  for (const auto& [links, out] : full_by) {
    if (pruned_by.count(links)) continue;
    EXPECT_TRUE(out->violated.empty()) << "pruned scenario flipped policy " << pid;
    EXPECT_FALSE(out->diverged);
  }

  // Pair mining under pruning covers a subset of scenarios, so its spec is
  // a superset of the exhaustive one (fewer lost-pair unions).
  EXPECT_TRUE(std::includes(pruned.fault_tolerant_pairs.begin(),
                            pruned.fault_tolerant_pairs.end(),
                            full.fault_tolerant_pairs.begin(),
                            full.fault_tolerant_pairs.end()));
}

TEST(SweepSpace, PruneWithoutPoliciesPrunesEverything) {
  const topo::Topology t = topo::make_full_mesh(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  const FailureSweepResult r = sweep_failures(rc, cfg, opts(2, true, false));
  EXPECT_EQ(r.explored_scenarios, 0u);
  EXPECT_EQ(r.pruned_scenarios, r.total_scenarios);
  EXPECT_EQ(r.total_scenarios, 21u);  // C(6,1) + C(6,2)
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  EXPECT_TRUE(r.outcomes.empty());
  // No scenario was verified, so the mined spec degenerates to healthy.
  EXPECT_EQ(r.fault_tolerant_pairs, r.healthy_pairs);
}

TEST(SweepSpace, SymmetryDedupIsBitIdenticalOnAFatTree) {
  // The empirical equivariance check: a symmetry-deduped sweep must equal
  // the exhaustive sweep field for field. Policy endpoints pin pods 0 and
  // 1; pods 2 and 3 are interchangeable, so 8 of the 32 single-link
  // scenarios are replayed instead of verified.
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  rc.require_reachable("edge0-0", "edge1-0",
                       config::host_prefix(t.find_node("edge1-0")));

  const FailureSweepResult full = sweep_failures(rc, cfg, opts(1, false, false));
  const FailureSweepResult sym = sweep_failures(rc, cfg, opts(1, false, true));

  EXPECT_EQ(full.explored_scenarios, 32u);
  EXPECT_EQ(sym.explored_scenarios, 24u);
  EXPECT_EQ(sym.replayed_scenarios, 8u);
  EXPECT_DOUBLE_EQ(sym.coverage, 1.0);
  expect_same_aggregates(full, sym);

  // Replayed orbits are visible per-outcome: pod-2 links stand for their
  // pod-3 siblings.
  std::size_t covered = 0;
  for (const ScenarioOutcome& o : sym.outcomes) covered += o.orbit;
  EXPECT_EQ(covered, 32u);
}

TEST(SweepSpace, AsymmetricPodDropsOutOfItsClass) {
  // Perturb one interface cost in pod 3: the config walk must refuse the
  // pod-3 swaps, shrinking the interchangeable class to {1, 2} (the policy
  // pins pod 0) — and the deduped sweep must still match the exhaustive
  // sweep, which handles the asymmetric pod honestly.
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  config::DeviceConfig& dev = cfg.devices.at("agg3-0");
  ASSERT_FALSE(dev.interfaces.empty());
  dev.interfaces.front().ospf_cost += 7;
  RealConfig rc(t);
  rc.apply(cfg);
  rc.require_reachable("edge0-0", "edge0-1",
                       config::host_prefix(t.find_node("edge0-1")));

  const FailureSweepResult full = sweep_failures(rc, cfg, opts(1, false, false));
  const FailureSweepResult sym = sweep_failures(rc, cfg, opts(1, false, true));

  // Pods 1 and 2 dedup; pods 0 (pinned) and 3 (asymmetric) are verified.
  EXPECT_EQ(full.explored_scenarios, 32u);
  EXPECT_EQ(sym.explored_scenarios, 24u);
  EXPECT_EQ(sym.replayed_scenarios, 8u);
  expect_same_aggregates(full, sym);
}

TEST(SweepSpace, DeterministicAcrossThreadCounts) {
  const topo::Topology t = topo::make_grid(3, 2);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  rc.require_reachable("n0-0", "n2-1", config::host_prefix(t.find_node("n2-1")));

  std::vector<FailureSweepResult> runs;
  for (const unsigned threads : {1u, 2u, 4u}) {
    runs.push_back(sweep_failures(rc, cfg, opts(3, true, false, /*budget=*/10, threads)));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    expect_same_aggregates(runs[0], runs[i]);
    ASSERT_EQ(runs[0].outcomes.size(), runs[i].outcomes.size());
    for (std::size_t j = 0; j < runs[0].outcomes.size(); ++j) {
      EXPECT_EQ(runs[0].outcomes[j].scenario, runs[i].outcomes[j].scenario);
      EXPECT_EQ(runs[0].outcomes[j].violated, runs[i].outcomes[j].violated);
      EXPECT_EQ(runs[0].outcomes[j].pairs_lost, runs[i].outcomes[j].pairs_lost);
    }
    EXPECT_EQ(runs[0].explored_scenarios, runs[i].explored_scenarios);
    EXPECT_DOUBLE_EQ(runs[0].coverage, runs[i].coverage);
  }
  EXPECT_EQ(runs[0].explored_scenarios, 10u);
  EXPECT_LT(runs[0].coverage, 1.0);
}

TEST(SweepSpace, BudgetIsAPrefixOfThePriorityStream) {
  const topo::Topology t = topo::make_grid(3, 2);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  rc.require_reachable("n0-0", "n2-1", config::host_prefix(t.find_node("n2-1")));

  FailureSweepOptions small = opts(2, true, false, /*budget=*/4);
  FailureSweepOptions large = opts(2, true, false, /*budget=*/1000);
  const SweepSpace a(rc, cfg, small);
  const SweepSpace b(rc, cfg, large);
  ASSERT_EQ(a.reps().size(), 4u);
  EXPECT_FALSE(a.exhausted());
  EXPECT_TRUE(b.exhausted());
  for (std::size_t i = 0; i < a.reps().size(); ++i) {
    EXPECT_EQ(a.reps()[i], b.reps()[i]);
  }

  // Without a budget the stream keeps the historical link-id order.
  FailureSweepOptions plain = opts(2, false, false);
  const SweepSpace c(rc, cfg, plain);
  ASSERT_EQ(c.reps().size(), c.total_scenarios());
  const std::size_t n = t.link_count();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(c.reps()[i].links, (std::vector<topo::LinkId>{static_cast<topo::LinkId>(i)}));
  }
  EXPECT_EQ(c.reps()[n].links, (std::vector<topo::LinkId>{0, 1}));
}

}  // namespace
}  // namespace rcfg::verify
