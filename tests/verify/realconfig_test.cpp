#include "verify/realconfig.h"

#include <gtest/gtest.h>

#include "baseline/simulator.h"
#include "config/builders.h"
#include "core/rng.h"
#include "dd/graph.h"
#include "topo/generators.h"

namespace rcfg::verify {
namespace {

/// Oracle: walk the FIB hop by hop for a concrete destination address and
/// decide whether s's traffic can reach d (following every ECMP branch).
bool fib_walk_reaches(const topo::Topology& t, const dd::ZSet<routing::FibEntry>& fib,
                      topo::NodeId s, topo::NodeId d, net::Ipv4Addr dst) {
  std::vector<bool> visited(t.node_count(), false);
  std::vector<topo::NodeId> stack{s};
  while (!stack.empty()) {
    const topo::NodeId n = stack.back();
    stack.pop_back();
    if (visited[n]) continue;
    visited[n] = true;
    // LPM over n's rows.
    const routing::FibEntry* best = nullptr;
    for (const auto& [e, w] : fib) {
      if (e.node != n || !e.prefix.contains(dst)) continue;
      if (best == nullptr || e.prefix.length() > best->prefix.length()) best = &e;
    }
    if (best == nullptr) continue;
    if (best->action == routing::FibAction::kDeliver) {
      if (n == d) return true;
      continue;
    }
    if (best->action == routing::FibAction::kDrop) continue;
    for (const topo::IfaceId i : best->out_ifaces) {
      const auto& ifc = t.iface(i);
      if (ifc.link) stack.push_back(t.peer(*ifc.link, n));
    }
  }
  return false;
}

TEST(RealConfig, EndToEndPipelineTimesAndDeltas) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);

  const auto full = rc.apply(cfg);
  EXPECT_FALSE(full.dataplane.fib.empty());
  EXPECT_FALSE(full.model.moves.empty());
  EXPECT_FALSE(full.check.affected_pairs.empty());
  EXPECT_GT(full.generate_ms, 0.0);

  // No change: every stage reports an empty delta.
  const auto idle = rc.apply(cfg);
  EXPECT_TRUE(idle.dataplane.fib.empty());
  EXPECT_TRUE(idle.model.empty());
  EXPECT_TRUE(idle.check.empty());

  // A small change produces small deltas.
  config::set_ospf_cost(cfg, "edge0-0", "to-agg0-0", 100);
  const auto incr = rc.apply(cfg);
  EXPECT_FALSE(incr.dataplane.fib.empty());
  EXPECT_LT(incr.dataplane.fib.size(), full.dataplane.fib.size());
  EXPECT_LT(incr.model.stats.ec_moves, full.model.stats.ec_moves);
}

TEST(RealConfig, ReachabilityMatchesFibWalkOracle) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_bgp_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  core::Rng rng{42};
  auto check_probes = [&](const char* context) {
    for (int probe = 0; probe < 40; ++probe) {
      const auto s = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      const auto d = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      if (s == d) continue;
      const net::Ipv4Prefix host = config::host_prefix(d);
      const dpm::EcId ec = rc.ecs().ec_of(rc.packet_space().dst_prefix(host));
      const bool got = rc.checker().reachable(s, d, ec);
      const bool want =
          fib_walk_reaches(t, rc.generator().fib(), s, d, host.first());
      ASSERT_EQ(got, want) << context << ": " << t.node(s).name << " -> " << t.node(d).name;
    }
  };

  check_probes("initial");
  config::fail_link(cfg, t, 7);
  rc.apply(cfg);
  check_probes("after failure");
  config::set_local_pref(cfg, "edge0-0", "to-agg0-1", 150);
  rc.apply(cfg);
  check_probes("after LP change");
  config::restore_link(cfg, t, 7);
  rc.apply(cfg);
  check_probes("after restore");
}

TEST(RealConfig, IncrementalCheckerMatchesFreshInstance) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);

  RealConfig incremental(t);
  incremental.apply(cfg);

  core::Rng rng{7};
  for (int step = 0; step < 6; ++step) {
    const auto l = static_cast<topo::LinkId>(rng.next_below(t.link_count()));
    if (rng.next_bool(0.5)) {
      config::fail_link(cfg, t, l);
    } else {
      const auto& lk = t.link(l);
      config::set_ospf_cost(cfg, t.node(lk.a).name, t.iface(lk.a_iface).name,
                            static_cast<std::uint32_t>(rng.next_in(1, 40)));
    }
    incremental.apply(cfg);

    RealConfig fresh(t);
    fresh.apply(cfg);

    // Pair counts and anomaly counts must agree (EC ids may differ).
    ASSERT_EQ(incremental.checker().pair_count(), fresh.checker().pair_count())
        << "step " << step;
    ASSERT_EQ(incremental.checker().loop_count(), fresh.checker().loop_count());
    ASSERT_EQ(incremental.checker().blackhole_count(), fresh.checker().blackhole_count());
  }
}

TEST(RealConfig, PolicyHelpersByName) {
  const topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);

  const auto p2 = config::host_prefix(t.find_node("n2-0"));
  const PolicyId reach = rc.require_reachable("n0-0", "n2-0", p2);
  const PolicyId way = rc.require_waypoint("n0-0", "n2-0", "n1-0", p2);
  EXPECT_TRUE(rc.checker().policy_satisfied(reach));
  EXPECT_TRUE(rc.checker().policy_satisfied(way));
  EXPECT_THROW(rc.require_reachable("ghost", "n2-0", p2), std::invalid_argument);

  config::fail_link(cfg, t, 1);
  const auto rep = rc.apply(cfg);
  EXPECT_FALSE(rc.checker().policy_satisfied(reach));
  ASSERT_FALSE(rep.check.events.empty());
}

TEST(RealConfig, UpdateOrderDoesNotChangeFinalState) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_bgp_network(t);

  RealConfigOptions ins;
  ins.update_order = dpm::UpdateOrder::kInsertFirst;
  RealConfigOptions del;
  del.update_order = dpm::UpdateOrder::kDeleteFirst;
  RealConfig a(t, ins), b(t, del);
  a.apply(cfg);
  b.apply(cfg);

  config::fail_link(cfg, t, 5);
  const auto ra = a.apply(cfg);
  const auto rb = b.apply(cfg);

  // Deletion-first moves ECs at least as often (via the drop port).
  EXPECT_GE(rb.model.stats.ec_moves, ra.model.stats.ec_moves);
  // Final semantics agree.
  EXPECT_EQ(a.checker().pair_count(), b.checker().pair_count());
  EXPECT_EQ(a.checker().loop_count(), b.checker().loop_count());
}

TEST(RealConfig, NonconvergentConfigThrows) {
  const topo::Topology t = topo::make_full_mesh(4);
  config::NetworkConfig cfg = config::build_bgp_network(t);
  for (unsigned i = 1; i <= 3; ++i) {
    cfg.devices.at("m" + std::to_string(i)).bgp->networks.clear();
  }
  config::set_local_pref(cfg, "m1", "to-m2", 200);
  config::set_local_pref(cfg, "m2", "to-m3", 200);
  config::set_local_pref(cfg, "m3", "to-m1", 200);

  RealConfig rc(t);
  rc.generator().set_flush_budget(2'000'000);
  rc.generator().set_recurrence_threshold(500);
  EXPECT_FALSE(rc.poisoned());
  EXPECT_THROW(rc.apply(cfg), dd::NonterminationError);

  // The instance is now poisoned: further applies fail fast with a clear
  // error instead of computing on inconsistent pipeline state — even with a
  // configuration that would converge fine on a fresh instance.
  EXPECT_TRUE(rc.poisoned());
  EXPECT_THROW(rc.apply(cfg), std::logic_error);
  EXPECT_THROW(rc.apply(config::build_bgp_network(t)), std::logic_error);
}

// ---------------------------------------------------------------------------
// Snapshot / fork
// ---------------------------------------------------------------------------

/// Griffin's BAD GADGET on full_mesh(4), stabilized: m1's strong preference
/// for its direct route from m0 breaks the dispute wheel, so the healthy
/// configuration converges — but failing link m0–m1 removes exactly that
/// route and re-exposes the oscillation.
config::NetworkConfig stabilized_gadget(const topo::Topology& t) {
  config::NetworkConfig cfg = config::build_bgp_network(t);
  for (unsigned i = 1; i <= 3; ++i) {
    cfg.devices.at("m" + std::to_string(i)).bgp->networks.clear();
  }
  config::set_local_pref(cfg, "m1", "to-m2", 200);
  config::set_local_pref(cfg, "m2", "to-m3", 200);
  config::set_local_pref(cfg, "m3", "to-m1", 200);
  config::set_local_pref(cfg, "m1", "to-m0", 300);
  return cfg;
}

topo::LinkId link_between(const topo::Topology& t, const std::string& a,
                          const std::string& b) {
  for (topo::LinkId l = 0; l < t.link_count(); ++l) {
    const auto& lk = t.link(l);
    const std::string& na = t.node(lk.a).name;
    const std::string& nb = t.node(lk.b).name;
    if ((na == a && nb == b) || (na == b && nb == a)) return l;
  }
  throw std::logic_error("no link " + a + "-" + b);
}

TEST(RealConfigSnapshot, RestoreRewindsPipelineState) {
  // A chain, so a link failure genuinely partitions the network.
  const topo::Topology t = topo::make_grid(3, 1);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  const PolicyId pid =
      rc.require_reachable("n0-0", "n2-0", config::host_prefix(t.find_node("n2-0")));

  const auto healthy_pairs = rc.checker().reachable_pairs();
  const auto snap = rc.snapshot();

  config::NetworkConfig failed = cfg;
  config::fail_link(failed, t, 1);
  rc.apply(failed);
  const auto failed_pairs = rc.checker().reachable_pairs();
  ASSERT_NE(failed_pairs, healthy_pairs);

  rc.restore(*snap);
  EXPECT_EQ(rc.checker().reachable_pairs(), healthy_pairs);
  EXPECT_TRUE(rc.checker().policy_satisfied(pid));

  // Incremental work from the restored state reproduces the first run
  // exactly: the whole pipeline (not just the checker) was rewound.
  rc.apply(failed);
  EXPECT_EQ(rc.checker().reachable_pairs(), failed_pairs);
}

TEST(RealConfigSnapshot, ForkedReplicaMatchesParentAndLeavesItUntouched) {
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  RealConfig rc(t);
  rc.apply(cfg);
  const auto healthy_pairs = rc.checker().reachable_pairs();

  const auto snap = rc.snapshot();
  const std::unique_ptr<RealConfig> replica = rc.fork(*snap);
  EXPECT_EQ(replica->checker().reachable_pairs(), healthy_pairs);

  // The replica diverges from the parent without touching it.
  config::NetworkConfig failed = cfg;
  config::fail_link(failed, t, 5);
  replica->apply(failed);
  EXPECT_EQ(rc.checker().reachable_pairs(), healthy_pairs);

  // The replica's incremental verdicts equal the parent's on the same delta.
  rc.apply(failed);
  EXPECT_EQ(replica->checker().reachable_pairs(), rc.checker().reachable_pairs());
  EXPECT_EQ(replica->checker().loop_count(), rc.checker().loop_count());
  EXPECT_EQ(replica->checker().blackhole_count(), rc.checker().blackhole_count());
}

TEST(RealConfigSnapshot, RestoreUnpoisonsAfterDivergence) {
  const topo::Topology t = topo::make_full_mesh(4);
  const config::NetworkConfig healthy = stabilized_gadget(t);
  RealConfig rc(t);
  rc.generator().set_flush_budget(2'000'000);
  rc.generator().set_recurrence_threshold(500);
  rc.apply(healthy);
  const auto healthy_pairs = rc.checker().reachable_pairs();
  const auto snap = rc.snapshot();

  config::NetworkConfig failed = healthy;
  config::fail_link(failed, t, link_between(t, "m0", "m1"));
  ASSERT_THROW(rc.apply(failed), dd::NonterminationError);
  ASSERT_TRUE(rc.poisoned());
  EXPECT_THROW(rc.snapshot(), std::logic_error);  // no checkpointing mid-wreck

  rc.restore(*snap);
  EXPECT_FALSE(rc.poisoned());
  EXPECT_EQ(rc.checker().reachable_pairs(), healthy_pairs);

  // And the recovered instance verifies converging deltas again.
  config::NetworkConfig other = healthy;
  config::fail_link(other, t, link_between(t, "m2", "m3"));
  EXPECT_NO_THROW(rc.apply(other));
}

// ---------------------------------------------------------------------------
// Memory reclamation
// ---------------------------------------------------------------------------

net::Ipv4Prefix churn_prefix(unsigned round, unsigned i) {
  return net::Ipv4Prefix{
      net::Ipv4Addr{192, 168, static_cast<std::uint8_t>(round * 8 + i), 0}, 24};
}

TEST(RealConfigReclaim, ChurnStaysBoundedAndMatchesFreshRebuild) {
  const topo::Topology t = topo::make_fat_tree(4);
  const config::NetworkConfig base = config::build_ospf_network(t);

  // Pinned to the BDD backend: the node_count comparison below measures
  // BDD-arena hoarding, which the interval backend (append-only, gc no-op)
  // does not exhibit.
  RealConfigOptions eager;
  eager.packet_space = dpm::BackendKind::kBdd;
  eager.reclamation.enabled = true;  // watermarks 0: reclaim after every batch
  RealConfigOptions plain;
  plain.packet_space = dpm::BackendKind::kBdd;
  RealConfig reclaiming(t, eager);
  RealConfig hoarding(t, plain);
  reclaiming.apply(base);
  hoarding.apply(base);
  const std::size_t baseline_ecs = reclaiming.ecs().ec_count();

  // Insert/withdraw churn: each round announces 8 fresh discard prefixes and
  // then withdraws them again.
  config::NetworkConfig cfg = base;
  for (unsigned round = 0; round < 6; ++round) {
    auto& dev = cfg.devices.at("edge0-0");
    for (unsigned i = 0; i < 8; ++i) {
      dev.static_routes.push_back({churn_prefix(round, i), config::kNullInterface});
    }
    reclaiming.apply(cfg);
    hoarding.apply(cfg);
    ASSERT_EQ(reclaiming.checker().reachable_pairs(), hoarding.checker().reachable_pairs())
        << "round " << round << " after insert";

    dev.static_routes.clear();
    const auto rep = reclaiming.apply(cfg);
    hoarding.apply(cfg);
    ASSERT_EQ(reclaiming.checker().reachable_pairs(), hoarding.checker().reachable_pairs())
        << "round " << round << " after withdraw";
    EXPECT_TRUE(rep.reclaim.ran);
    // The withdrawn prefixes' atoms merged away again: no residue grows
    // round over round.
    EXPECT_EQ(reclaiming.ecs().ec_count(), baseline_ecs) << "round " << round;
  }

  // Without reclamation, every withdrawn prefix leaves its split behind.
  EXPECT_GT(hoarding.ecs().ec_count(), baseline_ecs);
  EXPECT_GT(hoarding.packet_space().bdd().node_count(),
            reclaiming.packet_space().bdd().node_count());

  // The churned-then-reclaimed verifier matches a fresh rebuild exactly.
  RealConfig fresh(t, plain);
  fresh.apply(cfg);
  EXPECT_EQ(reclaiming.ecs().ec_count(), fresh.ecs().ec_count());
  EXPECT_EQ(reclaiming.checker().pair_count(), fresh.checker().pair_count());
  EXPECT_EQ(reclaiming.checker().reachable_pairs(), fresh.checker().reachable_pairs());
}

TEST(RealConfigReclaim, ReportExposesReclaimTelemetry) {
  const topo::Topology t = topo::make_grid(3, 1);
  RealConfigOptions eager;
  eager.reclamation.enabled = true;
  RealConfig rc(t, eager);

  config::NetworkConfig cfg = config::build_ospf_network(t);
  const auto first = rc.apply(cfg);
  EXPECT_GT(first.ec_count, 0u);
  EXPECT_GT(first.bdd_nodes, 0u);

  auto& dev = cfg.devices.at("n0-0");
  dev.static_routes.push_back({churn_prefix(0, 0), config::kNullInterface});
  rc.apply(cfg);
  dev.static_routes.clear();
  const auto rep = rc.apply(cfg);

  ASSERT_TRUE(rep.reclaim.ran);
  EXPECT_GT(rep.reclaim.ecs_before, rep.reclaim.ecs_after);
  EXPECT_GE(rep.reclaim.bdd_before, rep.reclaim.bdd_after);
  ASSERT_TRUE(rep.reclaim.remap.has_value());
  EXPECT_EQ(rep.reclaim.remap->new_count, rep.reclaim.ecs_after);
  EXPECT_EQ(rep.ec_count, rep.reclaim.ecs_after);
  EXPECT_GE(rep.total_ms(), rep.reclaim.reclaim_ms);
}

TEST(RealConfigReclaim, WatermarksGateTheReclaimStep) {
  const topo::Topology t = topo::make_grid(3, 1);
  RealConfigOptions lazy;
  lazy.reclamation.enabled = true;
  lazy.reclamation.ec_watermark = 10'000;  // never crossed by this test
  lazy.reclamation.bdd_watermark = 1'000'000;
  RealConfig rc(t, lazy);

  config::NetworkConfig cfg = config::build_ospf_network(t);
  rc.apply(cfg);
  auto& dev = cfg.devices.at("n0-0");
  dev.static_routes.push_back({churn_prefix(0, 0), config::kNullInterface});
  rc.apply(cfg);
  dev.static_routes.clear();
  const auto rep = rc.apply(cfg);
  EXPECT_FALSE(rep.reclaim.ran);  // below both watermarks: nothing fires
}

TEST(RealConfigReclaim, SnapshotRestoreInterleavesWithReclaim) {
  const topo::Topology t = topo::make_fat_tree(4);
  RealConfigOptions eager;
  eager.reclamation.enabled = true;
  RealConfig rc(t, eager);

  config::NetworkConfig cfg = config::build_ospf_network(t);
  rc.apply(cfg);
  const auto healthy_pairs = rc.checker().reachable_pairs();
  const auto snap = rc.snapshot();

  // Churn (with reclaims firing) past the snapshot...
  auto& dev = cfg.devices.at("edge0-0");
  for (unsigned i = 0; i < 4; ++i) {
    dev.static_routes.push_back({churn_prefix(1, i), config::kNullInterface});
  }
  rc.apply(cfg);
  dev.static_routes.clear();
  ASSERT_TRUE(rc.apply(cfg).reclaim.ran);

  // ...then rewind: the snapshot's partition and verdicts come back, and
  // further incremental work (including fresh reclaims) behaves normally.
  rc.restore(*snap);
  EXPECT_EQ(rc.checker().reachable_pairs(), healthy_pairs);

  for (unsigned i = 0; i < 4; ++i) {
    dev.static_routes.push_back({churn_prefix(2, i), config::kNullInterface});
  }
  rc.apply(cfg);
  dev.static_routes.clear();
  const auto rep = rc.apply(cfg);
  EXPECT_TRUE(rep.reclaim.ran);
  EXPECT_EQ(rc.checker().reachable_pairs(), healthy_pairs);
}

}  // namespace
}  // namespace rcfg::verify
