// Parser robustness: whatever mangled text arrives, parse_network either
// succeeds or throws ParseError — never crashes, never accepts garbage
// silently (verified by re-printing).

#include <gtest/gtest.h>

#include "config/builders.h"
#include "config/parse.h"
#include "config/print.h"
#include "core/rng.h"
#include "core/strings.h"
#include "topo/generators.h"

namespace rcfg::config {
namespace {

TEST(ParserRobustness, RandomLineMutationsNeverCrash) {
  const topo::Topology t = topo::make_ring(3);
  NetworkConfig base = build_ospf_network(t);
  base.devices.at("r0").static_routes.push_back(
      {*net::Ipv4Prefix::parse("1.2.3.0/24"), "to-r1", 1});
  core::Rng rng{20260707};
  attach_random_acl(base, t, "r1", "to-r2", true, 5, rng);
  const std::string pristine = print_network(base);

  const std::vector<std::string_view> lines = core::split(pristine, '\n');
  unsigned parsed_ok = 0, rejected = 0;

  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated;
    const std::size_t victim = rng.next_below(lines.size());
    const int mutation = static_cast<int>(rng.next_below(4));
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::string line{lines[i]};
      if (i == victim) {
        switch (mutation) {
          case 0:
            continue;  // drop the line
          case 1:
            line += " zzz_unexpected";
            break;
          case 2: {  // corrupt one character
            if (!line.empty()) line[rng.next_below(line.size())] = '#';
            break;
          }
          default: {  // duplicate the line
            mutated += line;
            mutated += '\n';
            break;
          }
        }
      }
      mutated += line;
      mutated += '\n';
    }

    try {
      const NetworkConfig cfg = parse_network(mutated);
      // Accepted: must survive a canonical round trip.
      ASSERT_EQ(parse_network(print_network(cfg)), cfg) << "trial " << trial;
      ++parsed_ok;
    } catch (const ParseError&) {
      ++rejected;  // fine: rejected with a diagnostic
    }
  }
  // Both outcomes must actually occur (the mutations are not all fatal and
  // not all benign) or the test is vacuous.
  EXPECT_GT(parsed_ok, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(ParserRobustness, TruncatedInputs) {
  const topo::Topology t = topo::make_ring(3);
  const std::string pristine = print_network(build_bgp_network(t));
  core::Rng rng{7};
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t cut = rng.next_below(pristine.size());
    try {
      (void)parse_network(pristine.substr(0, cut));
    } catch (const ParseError&) {
      // acceptable
    }
  }
  SUCCEED();
}

TEST(ParserRobustness, GarbageBytes) {
  core::Rng rng{8};
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage;
    for (int i = 0; i < 200; ++i) {
      garbage += static_cast<char>(rng.next_in(1, 126));
    }
    try {
      (void)parse_network(garbage);
    } catch (const ParseError&) {
      // acceptable
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace rcfg::config
