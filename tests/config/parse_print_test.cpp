#include <gtest/gtest.h>

#include "config/parse.h"
#include "config/print.h"

namespace rcfg::config {
namespace {

constexpr const char* kFullConfig = R"(hostname r1
!
interface eth0
  ip address 10.0.0.0/31
  ospf area 0
  ospf cost 10
  ip access-group ACL1 in
!
interface eth1
  ip address 10.0.0.2/31
  shutdown
!
interface lan0
  ip address 10.1.1.0/24
  ospf area 0
  ospf passive
!
ip route 192.168.0.0/16 eth0
ip route 10.99.0.0/24 null0 distance 5
!
ip prefix-list PL1 seq 10 permit 10.0.0.0/8 ge 16 le 24
ip prefix-list PL1 seq 20 deny 0.0.0.0/0 le 32
!
ip access-list ACL1
  10 permit tcp 10.0.0.0/8 any eq 80
  20 deny ip any any
!
route-map RM1 permit 10
  match ip prefix-list PL1
  set local-preference 150
!
route-map RM1 deny 20
!
router ospf
  redistribute static metric 20
!
router bgp 65001
  network 10.1.1.0/24
  neighbor eth0 remote-as 65002
  neighbor eth0 route-map RM1 in
  redistribute connected
!
)";

TEST(Parse, FullConfigStructure) {
  const DeviceConfig dev = parse_device(kFullConfig);
  EXPECT_EQ(dev.hostname, "r1");
  ASSERT_EQ(dev.interfaces.size(), 3u);

  const InterfaceConfig& eth0 = dev.interfaces[0];
  EXPECT_EQ(eth0.name, "eth0");
  EXPECT_EQ(eth0.address->to_string(), "10.0.0.0/31");
  EXPECT_TRUE(eth0.ospf_enabled());
  EXPECT_EQ(eth0.ospf_cost, 10u);
  EXPECT_EQ(eth0.acl_in, "ACL1");
  EXPECT_FALSE(eth0.shutdown);

  const InterfaceConfig& eth1 = dev.interfaces[1];
  EXPECT_TRUE(eth1.shutdown);
  EXPECT_FALSE(eth1.ospf_enabled());

  const InterfaceConfig& lan0 = dev.interfaces[2];
  EXPECT_TRUE(lan0.ospf_passive);

  ASSERT_EQ(dev.static_routes.size(), 2u);
  EXPECT_EQ(dev.static_routes[0].prefix.to_string(), "192.168.0.0/16");
  EXPECT_EQ(dev.static_routes[0].out_iface, "eth0");
  EXPECT_EQ(dev.static_routes[1].out_iface, "null0");
  EXPECT_EQ(dev.static_routes[1].admin_distance, 5u);

  ASSERT_TRUE(dev.prefix_lists.contains("PL1"));
  const PrefixList& pl = dev.prefix_lists.at("PL1");
  ASSERT_EQ(pl.entries.size(), 2u);
  EXPECT_EQ(pl.entries[0].ge, 16);
  EXPECT_EQ(pl.entries[0].le, 24);
  EXPECT_EQ(pl.entries[1].action, Action::kDeny);

  ASSERT_TRUE(dev.acls.contains("ACL1"));
  const Acl& acl = dev.acls.at("ACL1");
  ASSERT_EQ(acl.rules.size(), 2u);
  EXPECT_EQ(acl.rules[0].proto, IpProto::kTcp);
  EXPECT_EQ(acl.rules[0].dst_ports.lo, 80);
  EXPECT_EQ(acl.rules[0].dst_ports.hi, 80);

  ASSERT_TRUE(dev.route_maps.contains("RM1"));
  const RouteMap& rm = dev.route_maps.at("RM1");
  ASSERT_EQ(rm.clauses.size(), 2u);
  EXPECT_EQ(rm.clauses[0].set_local_pref, 150u);
  EXPECT_EQ(rm.clauses[1].action, Action::kDeny);

  ASSERT_TRUE(dev.ospf.has_value());
  ASSERT_EQ(dev.ospf->redistribute.size(), 1u);
  EXPECT_EQ(dev.ospf->redistribute[0].source, Redistribution::Source::kStatic);
  EXPECT_EQ(dev.ospf->redistribute[0].metric, 20u);

  ASSERT_TRUE(dev.bgp.has_value());
  EXPECT_EQ(dev.bgp->local_as, 65001u);
  ASSERT_EQ(dev.bgp->neighbors.size(), 1u);
  EXPECT_EQ(dev.bgp->neighbors[0].remote_as, 65002u);
  EXPECT_EQ(dev.bgp->neighbors[0].import_route_map, "RM1");
  ASSERT_EQ(dev.bgp->redistribute.size(), 1u);
  EXPECT_EQ(dev.bgp->redistribute[0].source, Redistribution::Source::kConnected);
}

TEST(Parse, PrintParseRoundTrip) {
  const DeviceConfig dev = parse_device(kFullConfig);
  const std::string printed = print_device(dev);
  const DeviceConfig reparsed = parse_device(printed);
  EXPECT_EQ(dev, reparsed);
  // And printing again is a fixed point.
  EXPECT_EQ(printed, print_device(reparsed));
}

TEST(Parse, MultiDeviceNetwork) {
  const std::string text = std::string{kFullConfig} + "hostname r2\n!\ninterface eth0\n";
  const NetworkConfig net = parse_network(text);
  EXPECT_EQ(net.devices.size(), 2u);
  EXPECT_TRUE(net.devices.contains("r1"));
  EXPECT_TRUE(net.devices.contains("r2"));
}

TEST(Parse, NetworkRoundTrip) {
  const std::string text = std::string{kFullConfig} + "hostname r2\n!\ninterface eth0\n";
  const NetworkConfig net = parse_network(text);
  EXPECT_EQ(parse_network(print_network(net)), net);
}

TEST(Parse, ErrorsCarryLineNumbers) {
  try {
    parse_device("hostname r1\nbogus statement here\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Parse, RejectsMissingHostname) {
  EXPECT_THROW(parse_device("interface eth0\n"), ParseError);
}

TEST(Parse, RejectsDuplicateHostname) {
  EXPECT_THROW(parse_device("hostname a\nhostname b\n"), ParseError);
}

TEST(Parse, RejectsDuplicateDevice) {
  EXPECT_THROW(parse_network("hostname a\n!\nhostname a\n"), ParseError);
}

TEST(Parse, RejectsMalformedPrefix) {
  EXPECT_THROW(parse_device("hostname r\nip route 10.0.0.0/40 eth0\n"), ParseError);
  EXPECT_THROW(parse_device("hostname r\nip route banana eth0\n"), ParseError);
}

TEST(Parse, RejectsBodyLineOutsideBlock) {
  EXPECT_THROW(parse_device("hostname r\n!\n  ip address 10.0.0.1/24\n"), ParseError);
}

TEST(Parse, RejectsRouteMapForUnknownNeighbor) {
  EXPECT_THROW(parse_device("hostname r\nrouter bgp 1\n  neighbor eth9 route-map RM in\n"),
               ParseError);
}

TEST(Parse, CommentsAndBlankLinesIgnored) {
  const DeviceConfig dev = parse_device("# a comment\nhostname r1\n\n\n# another\n");
  EXPECT_EQ(dev.hostname, "r1");
}

TEST(Parse, AclPortRange) {
  const DeviceConfig dev = parse_device(
      "hostname r\nip access-list A\n  10 permit udp any range 1000 2000 any\n");
  const AclRule& r = dev.acls.at("A").rules[0];
  EXPECT_EQ(r.src_ports.lo, 1000);
  EXPECT_EQ(r.src_ports.hi, 2000);
  EXPECT_TRUE(r.dst_ports.is_any());
}

TEST(Parse, PrefixListEntriesSortedBySeq) {
  const DeviceConfig dev = parse_device(
      "hostname r\n"
      "ip prefix-list P seq 20 deny 0.0.0.0/0 le 32\n"
      "ip prefix-list P seq 10 permit 10.0.0.0/8\n");
  const PrefixList& pl = dev.prefix_lists.at("P");
  ASSERT_EQ(pl.entries.size(), 2u);
  EXPECT_EQ(pl.entries[0].seq, 10u);
  EXPECT_EQ(pl.entries[1].seq, 20u);
}

}  // namespace
}  // namespace rcfg::config
