#include "config/diff.h"

#include <gtest/gtest.h>

#include "config/builders.h"
#include "config/parse.h"
#include "topo/generators.h"

namespace rcfg::config {
namespace {

TEST(DiffLines, IdenticalTextsNoEdits) {
  EXPECT_TRUE(diff_lines("a\nb\nc\n", "a\nb\nc\n").empty());
}

TEST(DiffLines, PureInsert) {
  const auto edits = diff_lines("a\nc\n", "a\nb\nc\n");
  ASSERT_EQ(edits.size(), 1u);
  EXPECT_EQ(edits[0].kind, LineEdit::Kind::kInsert);
  EXPECT_EQ(edits[0].text, "b");
  EXPECT_EQ(edits[0].line, 2u);
}

TEST(DiffLines, PureDelete) {
  const auto edits = diff_lines("a\nb\nc\n", "a\nc\n");
  ASSERT_EQ(edits.size(), 1u);
  EXPECT_EQ(edits[0].kind, LineEdit::Kind::kDelete);
  EXPECT_EQ(edits[0].text, "b");
}

TEST(DiffLines, ModificationIsDeletePlusInsert) {
  const auto edits = diff_lines("x\ncost 1\ny\n", "x\ncost 100\ny\n");
  ASSERT_EQ(edits.size(), 2u);
  int inserts = 0, deletes = 0;
  for (const auto& e : edits) {
    (e.kind == LineEdit::Kind::kInsert ? inserts : deletes)++;
  }
  EXPECT_EQ(inserts, 1);
  EXPECT_EQ(deletes, 1);
}

TEST(DiffLines, BlankLinesIgnored) {
  EXPECT_TRUE(diff_lines("a\n\nb\n", "a\nb\n\n\n").empty());
}

TEST(DiffNetworks, DetectsOnlyChangedDevice) {
  const topo::Topology t = topo::make_ring(4);
  NetworkConfig before = build_ospf_network(t);
  NetworkConfig after = before;
  set_ospf_cost(after, "r1", "to-r2", 100);

  const auto diffs = diff_networks(before, after);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].device, "r1");
  // cost 1 -> 100 on one interface: the `ospf cost` line appears; the old
  // default cost printed nothing, so this is a single insertion.
  EXPECT_EQ(diffs[0].edits.size(), 1u);
  EXPECT_EQ(diffs[0].edits[0].kind, LineEdit::Kind::kInsert);
  EXPECT_NE(diffs[0].edits[0].text.find("ospf cost 100"), std::string::npos);
}

TEST(DiffNetworks, LinkFailureTouchesBothEnds) {
  const topo::Topology t = topo::make_ring(4);
  NetworkConfig before = build_ospf_network(t);
  NetworkConfig after = before;
  fail_link(after, t, 0);

  const auto diffs = diff_networks(before, after);
  EXPECT_EQ(diffs.size(), 2u);  // both endpoints gain a `shutdown` line
  EXPECT_EQ(edit_count(diffs), 2u);
  for (const auto& d : diffs) {
    ASSERT_EQ(d.edits.size(), 1u);
    EXPECT_EQ(d.edits[0].kind, LineEdit::Kind::kInsert);
    EXPECT_NE(d.edits[0].text.find("shutdown"), std::string::npos);
  }
}

TEST(DiffNetworks, AddedAndRemovedDevices) {
  NetworkConfig a = parse_network("hostname r1\n!\nhostname r2\n");
  NetworkConfig b = parse_network("hostname r2\n!\nhostname r3\n");
  const auto diffs = diff_networks(a, b);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].device, "r1");
  EXPECT_EQ(diffs[0].edits[0].kind, LineEdit::Kind::kDelete);
  EXPECT_EQ(diffs[1].device, "r3");
  EXPECT_EQ(diffs[1].edits[0].kind, LineEdit::Kind::kInsert);
}

TEST(DiffNetworks, NoChangesNoDiffs) {
  const topo::Topology t = topo::make_ring(3);
  const NetworkConfig cfg = build_bgp_network(t);
  EXPECT_TRUE(diff_networks(cfg, cfg).empty());
}

}  // namespace
}  // namespace rcfg::config
