#include "config/builders.h"

#include <gtest/gtest.h>

#include <set>

#include "config/parse.h"
#include "config/print.h"
#include "topo/generators.h"

namespace rcfg::config {
namespace {

TEST(AddressPlan, HostPrefixesAreDisjoint) {
  std::set<net::Ipv4Prefix> seen;
  for (topo::NodeId n = 0; n < 600; ++n) {
    const auto p = host_prefix(n);
    EXPECT_EQ(p.length(), 24);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate host prefix for node " << n;
  }
}

TEST(AddressPlan, LinkSubnetsAreDisjointSlash31s) {
  std::set<net::Ipv4Prefix> seen;
  for (topo::LinkId l = 0; l < 2000; ++l) {
    const auto p = link_subnet(l);
    EXPECT_EQ(p.length(), 31);
    EXPECT_TRUE(seen.insert(p).second);
  }
}

TEST(AddressPlan, HostAndLinkSpacesDisjoint) {
  for (topo::NodeId n = 0; n < 100; ++n) {
    for (topo::LinkId l = 0; l < 100; ++l) {
      EXPECT_FALSE(host_prefix(n).overlaps(link_subnet(l)));
    }
  }
}

TEST(BuildOspf, EveryInterfaceRunsOspf) {
  const topo::Topology t = topo::make_fat_tree(4);
  const NetworkConfig cfg = build_ospf_network(t);
  ASSERT_EQ(cfg.devices.size(), t.node_count());
  for (const auto& [name, dev] : cfg.devices) {
    ASSERT_TRUE(dev.ospf.has_value()) << name;
    EXPECT_FALSE(dev.bgp.has_value());
    for (const auto& i : dev.interfaces) {
      EXPECT_TRUE(i.ospf_enabled()) << name << "/" << i.name;
      ASSERT_TRUE(i.address.has_value());
      if (i.name == "lan0") {
        EXPECT_TRUE(i.ospf_passive);
        EXPECT_EQ(i.address->length(), 24);
      } else {
        EXPECT_EQ(i.address->length(), 31);
      }
    }
  }
}

TEST(BuildOspf, LinkEndsShareSubnet) {
  const topo::Topology t = topo::make_ring(3);
  const NetworkConfig cfg = build_ospf_network(t);
  for (topo::LinkId l = 0; l < t.link_count(); ++l) {
    const auto& lk = t.link(l);
    const auto& da = cfg.devices.at(t.node(lk.a).name);
    const auto& db = cfg.devices.at(t.node(lk.b).name);
    const auto* ia = da.find_interface(t.iface(lk.a_iface).name);
    const auto* ib = db.find_interface(t.iface(lk.b_iface).name);
    ASSERT_NE(ia, nullptr);
    ASSERT_NE(ib, nullptr);
    EXPECT_EQ(*ia->address, *ib->address);
  }
}

TEST(BuildBgp, OneAsPerNodeFullPeering) {
  const topo::Topology t = topo::make_fat_tree(4);
  const NetworkConfig cfg = build_bgp_network(t);
  std::set<std::uint32_t> as_numbers;
  for (const auto& [name, dev] : cfg.devices) {
    ASSERT_TRUE(dev.bgp.has_value()) << name;
    EXPECT_TRUE(as_numbers.insert(dev.bgp->local_as).second) << "duplicate AS";
    const topo::NodeId n = t.find_node(name);
    EXPECT_EQ(dev.bgp->neighbors.size(), t.adjacencies(n).size());
    ASSERT_EQ(dev.bgp->networks.size(), 1u);
    EXPECT_EQ(dev.bgp->networks[0], host_prefix(n));
  }
}

TEST(BuildBgp, NeighborAsMatchesPeer) {
  const topo::Topology t = topo::make_ring(5);
  const NetworkConfig cfg = build_bgp_network(t, 65000);
  for (const auto& [name, dev] : cfg.devices) {
    const topo::NodeId n = t.find_node(name);
    for (const auto& adj : t.adjacencies(n)) {
      const auto& iface_name = t.iface(adj.iface).name;
      bool found = false;
      for (const auto& nb : dev.bgp->neighbors) {
        if (nb.iface == iface_name) {
          EXPECT_EQ(nb.remote_as, 65000u + adj.peer);
          found = true;
        }
      }
      EXPECT_TRUE(found) << "no neighbor on " << iface_name;
    }
  }
}

TEST(BuiltConfigsSurviveRoundTrip, OspfAndBgp) {
  const topo::Topology t = topo::make_fat_tree(4);
  for (const NetworkConfig& cfg : {build_ospf_network(t), build_bgp_network(t)}) {
    EXPECT_EQ(parse_network(print_network(cfg)), cfg);
  }
}

TEST(Mutators, FailAndRestoreLink) {
  const topo::Topology t = topo::make_ring(3);
  NetworkConfig cfg = build_ospf_network(t);
  const NetworkConfig orig = cfg;
  fail_link(cfg, t, 1);
  EXPECT_NE(cfg, orig);
  restore_link(cfg, t, 1);
  EXPECT_EQ(cfg, orig);
}

TEST(Mutators, SetLocalPrefCreatesImportPolicy) {
  const topo::Topology t = topo::make_ring(3);
  NetworkConfig cfg = build_bgp_network(t);
  set_local_pref(cfg, "r0", "to-r1", 150);

  const DeviceConfig& dev = cfg.devices.at("r0");
  ASSERT_TRUE(dev.prefix_lists.contains("PL-ANY"));
  ASSERT_TRUE(dev.route_maps.contains("LP-to-r1"));
  const RouteMap& rm = dev.route_maps.at("LP-to-r1");
  ASSERT_EQ(rm.clauses.size(), 1u);
  EXPECT_EQ(rm.clauses[0].set_local_pref, 150u);

  bool attached = false;
  for (const auto& nb : dev.bgp->neighbors) {
    if (nb.iface == "to-r1") {
      EXPECT_EQ(nb.import_route_map, "LP-to-r1");
      attached = true;
    }
  }
  EXPECT_TRUE(attached);
}

TEST(Mutators, SetLocalPrefOnOspfDeviceThrows) {
  const topo::Topology t = topo::make_ring(3);
  NetworkConfig cfg = build_ospf_network(t);
  EXPECT_THROW(set_local_pref(cfg, "r0", "to-r1", 150), std::invalid_argument);
}

TEST(Mutators, UnknownDeviceOrIfaceThrows) {
  const topo::Topology t = topo::make_ring(3);
  NetworkConfig cfg = build_ospf_network(t);
  EXPECT_THROW(set_ospf_cost(cfg, "nope", "to-r1", 5), std::invalid_argument);
  EXPECT_THROW(set_ospf_cost(cfg, "r0", "nope", 5), std::invalid_argument);
}

TEST(Mutators, AttachRandomAclBindsAndParses) {
  const topo::Topology t = topo::make_ring(3);
  NetworkConfig cfg = build_ospf_network(t);
  core::Rng rng{5};
  attach_random_acl(cfg, t, "r0", "to-r1", /*inbound=*/true, 10, rng);
  const DeviceConfig& dev = cfg.devices.at("r0");
  ASSERT_EQ(dev.acls.size(), 1u);
  EXPECT_EQ(dev.acls.begin()->second.rules.size(), 11u);  // 10 + catch-all
  EXPECT_TRUE(dev.find_interface("to-r1")->acl_in.has_value());
  // Round-trips through the DSL.
  EXPECT_EQ(parse_network(print_network(cfg)), cfg);
}

}  // namespace
}  // namespace rcfg::config
