#include "config/builders.h"

#include <gtest/gtest.h>

#include <set>

#include "config/parse.h"
#include "config/print.h"
#include "topo/generators.h"

namespace rcfg::config {
namespace {

TEST(AddressPlan, HostPrefixesAreDisjoint) {
  std::set<net::Ipv4Prefix> seen;
  for (topo::NodeId n = 0; n < 600; ++n) {
    const auto p = host_prefix(n);
    EXPECT_EQ(p.length(), 24);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate host prefix for node " << n;
  }
}

TEST(AddressPlan, LinkSubnetsAreDisjointSlash31s) {
  std::set<net::Ipv4Prefix> seen;
  for (topo::LinkId l = 0; l < 2000; ++l) {
    const auto p = link_subnet(l);
    EXPECT_EQ(p.length(), 31);
    EXPECT_TRUE(seen.insert(p).second);
  }
}

TEST(AddressPlan, HostAndLinkSpacesDisjoint) {
  for (topo::NodeId n = 0; n < 100; ++n) {
    for (topo::LinkId l = 0; l < 100; ++l) {
      EXPECT_FALSE(host_prefix(n).overlaps(link_subnet(l)));
    }
  }
}

TEST(BuildOspf, EveryInterfaceRunsOspf) {
  const topo::Topology t = topo::make_fat_tree(4);
  const NetworkConfig cfg = build_ospf_network(t);
  ASSERT_EQ(cfg.devices.size(), t.node_count());
  for (const auto& [name, dev] : cfg.devices) {
    ASSERT_TRUE(dev.ospf.has_value()) << name;
    EXPECT_FALSE(dev.bgp.has_value());
    for (const auto& i : dev.interfaces) {
      EXPECT_TRUE(i.ospf_enabled()) << name << "/" << i.name;
      ASSERT_TRUE(i.address.has_value());
      if (i.name == "lan0") {
        EXPECT_TRUE(i.ospf_passive);
        EXPECT_EQ(i.address->length(), 24);
      } else {
        EXPECT_EQ(i.address->length(), 31);
      }
    }
  }
}

TEST(BuildOspf, LinkEndsShareSubnet) {
  const topo::Topology t = topo::make_ring(3);
  const NetworkConfig cfg = build_ospf_network(t);
  for (topo::LinkId l = 0; l < t.link_count(); ++l) {
    const auto& lk = t.link(l);
    const auto& da = cfg.devices.at(t.node(lk.a).name);
    const auto& db = cfg.devices.at(t.node(lk.b).name);
    const auto* ia = da.find_interface(t.iface(lk.a_iface).name);
    const auto* ib = db.find_interface(t.iface(lk.b_iface).name);
    ASSERT_NE(ia, nullptr);
    ASSERT_NE(ib, nullptr);
    EXPECT_EQ(*ia->address, *ib->address);
  }
}

TEST(BuildBgp, OneAsPerNodeFullPeering) {
  const topo::Topology t = topo::make_fat_tree(4);
  const NetworkConfig cfg = build_bgp_network(t);
  std::set<std::uint32_t> as_numbers;
  for (const auto& [name, dev] : cfg.devices) {
    ASSERT_TRUE(dev.bgp.has_value()) << name;
    EXPECT_TRUE(as_numbers.insert(dev.bgp->local_as).second) << "duplicate AS";
    const topo::NodeId n = t.find_node(name);
    EXPECT_EQ(dev.bgp->neighbors.size(), t.adjacencies(n).size());
    ASSERT_EQ(dev.bgp->networks.size(), 1u);
    EXPECT_EQ(dev.bgp->networks[0], host_prefix(n));
  }
}

TEST(BuildBgp, NeighborAsMatchesPeer) {
  const topo::Topology t = topo::make_ring(5);
  const NetworkConfig cfg = build_bgp_network(t, 65000);
  for (const auto& [name, dev] : cfg.devices) {
    const topo::NodeId n = t.find_node(name);
    for (const auto& adj : t.adjacencies(n)) {
      const auto& iface_name = t.iface(adj.iface).name;
      bool found = false;
      for (const auto& nb : dev.bgp->neighbors) {
        if (nb.iface == iface_name) {
          EXPECT_EQ(nb.remote_as, 65000u + adj.peer);
          found = true;
        }
      }
      EXPECT_TRUE(found) << "no neighbor on " << iface_name;
    }
  }
}

TEST(BuiltConfigsSurviveRoundTrip, OspfAndBgp) {
  const topo::Topology t = topo::make_fat_tree(4);
  for (const NetworkConfig& cfg : {build_ospf_network(t), build_bgp_network(t)}) {
    EXPECT_EQ(parse_network(print_network(cfg)), cfg);
  }
}

TEST(Mutators, FailAndRestoreLink) {
  const topo::Topology t = topo::make_ring(3);
  NetworkConfig cfg = build_ospf_network(t);
  const NetworkConfig orig = cfg;
  fail_link(cfg, t, 1);
  EXPECT_NE(cfg, orig);
  restore_link(cfg, t, 1);
  EXPECT_EQ(cfg, orig);
}

TEST(Mutators, SetLocalPrefCreatesImportPolicy) {
  const topo::Topology t = topo::make_ring(3);
  NetworkConfig cfg = build_bgp_network(t);
  set_local_pref(cfg, "r0", "to-r1", 150);

  const DeviceConfig& dev = cfg.devices.at("r0");
  ASSERT_TRUE(dev.prefix_lists.contains("PL-ANY"));
  ASSERT_TRUE(dev.route_maps.contains("LP-to-r1"));
  const RouteMap& rm = dev.route_maps.at("LP-to-r1");
  ASSERT_EQ(rm.clauses.size(), 1u);
  EXPECT_EQ(rm.clauses[0].set_local_pref, 150u);

  bool attached = false;
  for (const auto& nb : dev.bgp->neighbors) {
    if (nb.iface == "to-r1") {
      EXPECT_EQ(nb.import_route_map, "LP-to-r1");
      attached = true;
    }
  }
  EXPECT_TRUE(attached);
}

TEST(Mutators, SetLocalPrefOnOspfDeviceThrows) {
  const topo::Topology t = topo::make_ring(3);
  NetworkConfig cfg = build_ospf_network(t);
  EXPECT_THROW(set_local_pref(cfg, "r0", "to-r1", 150), std::invalid_argument);
}

TEST(Mutators, UnknownDeviceOrIfaceThrows) {
  const topo::Topology t = topo::make_ring(3);
  NetworkConfig cfg = build_ospf_network(t);
  EXPECT_THROW(set_ospf_cost(cfg, "nope", "to-r1", 5), std::invalid_argument);
  EXPECT_THROW(set_ospf_cost(cfg, "r0", "nope", 5), std::invalid_argument);
}

TEST(Mutators, AttachRandomAclBindsAndParses) {
  const topo::Topology t = topo::make_ring(3);
  NetworkConfig cfg = build_ospf_network(t);
  core::Rng rng{5};
  attach_random_acl(cfg, t, "r0", "to-r1", /*inbound=*/true, 10, rng);
  const DeviceConfig& dev = cfg.devices.at("r0");
  ASSERT_EQ(dev.acls.size(), 1u);
  EXPECT_EQ(dev.acls.begin()->second.rules.size(), 11u);  // 10 + catch-all
  EXPECT_TRUE(dev.find_interface("to-r1")->acl_in.has_value());
  // Round-trips through the DSL.
  EXPECT_EQ(parse_network(print_network(cfg)), cfg);
}

TEST(WanMetrics, ApplyLinkCostsSetsBothEnds) {
  topo::WanParams p;
  p.nodes = 10;
  p.links = 18;
  p.min_cost = 2;
  p.max_cost = 50;
  core::Rng rng{11};
  const topo::WeightedTopology wan = topo::make_wan(p, rng);
  NetworkConfig cfg = build_ospf_network(wan.topo);
  apply_link_costs(cfg, wan.topo, wan.link_cost);
  for (topo::LinkId l = 0; l < wan.topo.link_count(); ++l) {
    const auto& lk = wan.topo.link(l);
    const auto* ia = cfg.devices.at(wan.topo.node(lk.a).name)
                         .find_interface(wan.topo.iface(lk.a_iface).name);
    const auto* ib = cfg.devices.at(wan.topo.node(lk.b).name)
                         .find_interface(wan.topo.iface(lk.b_iface).name);
    ASSERT_NE(ia, nullptr);
    ASSERT_NE(ib, nullptr);
    EXPECT_EQ(ia->ospf_cost, wan.link_cost[l]);
    EXPECT_EQ(ib->ospf_cost, wan.link_cost[l]);
  }
  // build_wan_ospf_network is exactly the composition of the two.
  EXPECT_EQ(build_wan_ospf_network(wan), cfg);
}

TEST(WanMetrics, ApplyLinkCostsValidatesInput) {
  const topo::Topology t = topo::make_ring(4);
  NetworkConfig cfg = build_ospf_network(t);
  EXPECT_THROW(apply_link_costs(cfg, t, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(apply_link_costs(cfg, t, {1, 2, 3, 4, 5}), std::invalid_argument);
  EXPECT_THROW(apply_link_costs(cfg, t, {1, 0, 3, 4}), std::invalid_argument);
  EXPECT_NO_THROW(apply_link_costs(cfg, t, {1, 2, 3, 4}));
}

TEST(ChurnProfiles, IspExtraPrefixesDisjointFromAddressPlan) {
  for (topo::NodeId n = 0; n < 200; ++n) {
    const auto extra = isp_extra_prefix(n);
    EXPECT_EQ(extra.length(), 24);
    for (topo::NodeId m = 0; m < 200; ++m) {
      EXPECT_FALSE(extra.overlaps(host_prefix(m)));
      if (m != n) EXPECT_FALSE(extra == isp_extra_prefix(m));
    }
    for (topo::LinkId l = 0; l < 200; ++l) {
      EXPECT_FALSE(extra.overlaps(link_subnet(l)));
    }
  }
}

TEST(ChurnProfiles, IspStepsMutateAndStayParseable) {
  const topo::Topology t = topo::make_ring(6);
  NetworkConfig cfg = build_bgp_network(t);
  core::Rng rng{17};
  bool saw_local_pref = false, saw_route_toggle = false;
  unsigned mutated = 0;
  for (int step = 0; step < 40; ++step) {
    const NetworkConfig before = cfg;
    isp_route_churn_step(cfg, t, rng);
    // Re-drawing a neighbor's existing local pref is a legal no-op, but the
    // profile must not degenerate into one.
    if (cfg != before) ++mutated;
    for (const auto& [name, dev] : cfg.devices) {
      ASSERT_TRUE(dev.bgp.has_value()) << name;
      if (!dev.route_maps.empty()) saw_local_pref = true;
      if (dev.bgp->networks.size() != 1) saw_route_toggle = true;
    }
  }
  EXPECT_GT(mutated, 20u) << "churn profile degenerated into no-ops";
  EXPECT_TRUE(saw_local_pref) << "40 steps never rewrote a local pref";
  EXPECT_TRUE(saw_route_toggle) << "40 steps never toggled an announcement";
  EXPECT_EQ(parse_network(print_network(cfg)), cfg);
}

TEST(ChurnProfiles, IspStepRequiresBgp) {
  const topo::Topology t = topo::make_ring(4);
  NetworkConfig cfg = build_ospf_network(t);
  core::Rng rng{1};
  EXPECT_THROW(isp_route_churn_step(cfg, t, rng), std::invalid_argument);
}

TEST(ChurnProfiles, StepsAreDeterministicInTheSeed) {
  const topo::Topology t = topo::make_ring(5);
  NetworkConfig a = build_bgp_network(t);
  NetworkConfig b = a;
  core::Rng ra{23}, rb{23};
  for (int step = 0; step < 10; ++step) {
    isp_route_churn_step(a, t, ra);
    isp_route_churn_step(b, t, rb);
  }
  EXPECT_EQ(a, b);
}

TEST(ChurnProfiles, CampusStepsAttachMultiFieldAcls) {
  const topo::Topology t = topo::make_torus(3, 3);
  NetworkConfig cfg = build_ospf_network(t);
  core::Rng rng{29};
  for (int step = 0; step < 10; ++step) campus_acl_churn_step(cfg, t, rng);
  std::size_t acls = 0;
  for (const auto& [name, dev] : cfg.devices) {
    acls += dev.acls.size();
    // Every binding must reference an ACL that exists on the device.
    for (const auto& i : dev.interfaces) {
      if (i.acl_in) EXPECT_TRUE(dev.acls.contains(*i.acl_in)) << name;
      if (i.acl_out) EXPECT_TRUE(dev.acls.contains(*i.acl_out)) << name;
    }
  }
  EXPECT_GT(acls, 0u) << "10 campus steps attached no ACL";
  EXPECT_EQ(parse_network(print_network(cfg)), cfg);
}

}  // namespace
}  // namespace rcfg::config
