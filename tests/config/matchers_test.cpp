#include "config/matchers.h"

#include <gtest/gtest.h>

namespace rcfg::config {
namespace {

net::Ipv4Prefix pfx(const char* s) { return *net::Ipv4Prefix::parse(s); }
net::Ipv4Addr addr(const char* s) { return *net::Ipv4Addr::parse(s); }

TEST(PrefixListEntryMatch, ExactByDefault) {
  PrefixListEntry e;
  e.prefix = pfx("10.0.0.0/16");
  EXPECT_TRUE(entry_matches(e, pfx("10.0.0.0/16")));
  EXPECT_FALSE(entry_matches(e, pfx("10.0.1.0/24")));  // longer
  EXPECT_FALSE(entry_matches(e, pfx("10.0.0.0/8")));   // shorter / not covered
}

TEST(PrefixListEntryMatch, GeLeWindow) {
  PrefixListEntry e;
  e.prefix = pfx("10.0.0.0/8");
  e.ge = 16;
  e.le = 24;
  EXPECT_FALSE(entry_matches(e, pfx("10.0.0.0/8")));
  EXPECT_TRUE(entry_matches(e, pfx("10.1.0.0/16")));
  EXPECT_TRUE(entry_matches(e, pfx("10.1.2.0/24")));
  EXPECT_FALSE(entry_matches(e, pfx("10.1.2.0/25")));
  EXPECT_FALSE(entry_matches(e, pfx("11.0.0.0/16")));  // not covered
}

TEST(PrefixListEntryMatch, LeOnlyDefaultsGeToPrefixLen) {
  PrefixListEntry e;
  e.prefix = pfx("0.0.0.0/0");
  e.le = 32;
  EXPECT_TRUE(entry_matches(e, pfx("0.0.0.0/0")));
  EXPECT_TRUE(entry_matches(e, pfx("10.1.2.3/32")));
}

TEST(PrefixList, FirstMatchWins) {
  PrefixList pl;
  pl.entries.push_back(PrefixListEntry{10, Action::kDeny, pfx("10.1.0.0/16"), 0, 32});
  pl.entries.push_back(PrefixListEntry{20, Action::kPermit, pfx("10.0.0.0/8"), 0, 32});
  EXPECT_EQ(evaluate_prefix_list(pl, pfx("10.1.5.0/24")), Action::kDeny);
  EXPECT_EQ(evaluate_prefix_list(pl, pfx("10.2.5.0/24")), Action::kPermit);
}

TEST(PrefixList, ImplicitDeny) {
  PrefixList pl;
  pl.entries.push_back(PrefixListEntry{10, Action::kPermit, pfx("10.0.0.0/8"), 0, 32});
  EXPECT_EQ(evaluate_prefix_list(pl, pfx("192.168.0.0/16")), Action::kDeny);
}

TEST(RouteMap, PermitWithSets) {
  DeviceConfig dev;
  PrefixList pl;
  pl.name = "PL";
  pl.entries.push_back(PrefixListEntry{10, Action::kPermit, pfx("10.0.0.0/8"), 0, 32});
  dev.prefix_lists["PL"] = pl;

  RouteMap rm;
  RouteMapClause c;
  c.seq = 10;
  c.match_prefix_list = "PL";
  c.set_local_pref = 200;
  c.set_med = 33;
  rm.clauses.push_back(c);

  const auto out = apply_route_map(rm, dev, pfx("10.1.0.0/16"), RouteAttrs{});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->local_pref, 200u);
  EXPECT_EQ(out->med, 33u);

  // Non-matching route: implicit deny.
  EXPECT_FALSE(apply_route_map(rm, dev, pfx("192.168.0.0/16"), RouteAttrs{}).has_value());
}

TEST(RouteMap, DenyClauseRejects) {
  DeviceConfig dev;
  PrefixList pl;
  pl.entries.push_back(PrefixListEntry{10, Action::kPermit, pfx("10.0.0.0/8"), 0, 32});
  dev.prefix_lists["PL"] = pl;

  RouteMap rm;
  RouteMapClause deny;
  deny.seq = 10;
  deny.action = Action::kDeny;
  deny.match_prefix_list = "PL";
  rm.clauses.push_back(deny);
  RouteMapClause permit_all;
  permit_all.seq = 20;
  rm.clauses.push_back(permit_all);

  EXPECT_FALSE(apply_route_map(rm, dev, pfx("10.1.0.0/16"), RouteAttrs{}).has_value());
  EXPECT_TRUE(apply_route_map(rm, dev, pfx("192.168.0.0/16"), RouteAttrs{}).has_value());
}

TEST(RouteMap, MatchAllClauseWhenNoMatchCondition) {
  DeviceConfig dev;
  RouteMap rm;
  RouteMapClause c;
  c.seq = 10;
  c.set_local_pref = 150;
  rm.clauses.push_back(c);
  const auto out = apply_route_map(rm, dev, pfx("1.2.3.0/24"), RouteAttrs{});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->local_pref, 150u);
}

TEST(RouteMap, MissingPrefixListFailsClosed) {
  DeviceConfig dev;
  RouteMap rm;
  RouteMapClause c;
  c.seq = 10;
  c.match_prefix_list = "NOPE";
  rm.clauses.push_back(c);
  EXPECT_FALSE(apply_route_map(rm, dev, pfx("10.0.0.0/8"), RouteAttrs{}).has_value());
}

TEST(RouteMap, AttrsPassThroughWhenNoSet) {
  DeviceConfig dev;
  RouteMap rm;
  rm.clauses.push_back(RouteMapClause{10, Action::kPermit, {}, {}, {}, {}});
  RouteAttrs in;
  in.local_pref = 77;
  const auto out = apply_route_map(rm, dev, pfx("10.0.0.0/8"), in);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->local_pref, 77u);
}

TEST(AclRuleMatch, ProtocolSemantics) {
  AclRule r;
  r.proto = IpProto::kTcp;
  Flow f;
  f.proto = IpProto::kTcp;
  EXPECT_TRUE(rule_matches(r, f));
  f.proto = IpProto::kUdp;
  EXPECT_FALSE(rule_matches(r, f));

  r.proto = IpProto::kAny;
  EXPECT_TRUE(rule_matches(r, f));
}

TEST(AclRuleMatch, PrefixAndPorts) {
  AclRule r;
  r.src = pfx("10.0.0.0/8");
  r.dst = pfx("192.168.1.0/24");
  r.dst_ports = PortRange{80, 80};

  Flow f;
  f.src = addr("10.1.1.1");
  f.dst = addr("192.168.1.5");
  f.dst_port = 80;
  EXPECT_TRUE(rule_matches(r, f));
  f.dst_port = 81;
  EXPECT_FALSE(rule_matches(r, f));
  f.dst_port = 80;
  f.src = addr("11.1.1.1");
  EXPECT_FALSE(rule_matches(r, f));
}

TEST(Acl, FirstMatchAndImplicitDeny) {
  Acl acl;
  AclRule permit_web;
  permit_web.seq = 10;
  permit_web.proto = IpProto::kTcp;
  permit_web.dst_ports = PortRange{80, 80};
  acl.rules.push_back(permit_web);
  AclRule deny_tcp;
  deny_tcp.seq = 20;
  deny_tcp.action = Action::kDeny;
  deny_tcp.proto = IpProto::kTcp;
  acl.rules.push_back(deny_tcp);
  AclRule permit_all;
  permit_all.seq = 30;
  acl.rules.push_back(permit_all);

  Flow web;
  web.proto = IpProto::kTcp;
  web.dst_port = 80;
  EXPECT_EQ(evaluate_acl(acl, web), Action::kPermit);

  Flow ssh;
  ssh.proto = IpProto::kTcp;
  ssh.dst_port = 22;
  EXPECT_EQ(evaluate_acl(acl, ssh), Action::kDeny);

  Flow icmp;
  icmp.proto = IpProto::kIcmp;
  EXPECT_EQ(evaluate_acl(acl, icmp), Action::kPermit);

  // Empty ACL: implicit deny.
  EXPECT_EQ(evaluate_acl(Acl{}, web), Action::kDeny);
}

}  // namespace
}  // namespace rcfg::config
