#include "dpm/bdd.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace rcfg::dpm {
namespace {

TEST(Bdd, TerminalsAndVars) {
  BddManager m(4);
  EXPECT_TRUE(m.is_false(kBddFalse));
  EXPECT_TRUE(m.is_true(kBddTrue));
  const BddRef x0 = m.var(0);
  EXPECT_EQ(x0, m.var(0));  // hash-consed
  EXPECT_NE(x0, m.var(1));
  EXPECT_EQ(m.bdd_not(x0), m.nvar(0));
  EXPECT_THROW(m.var(4), std::out_of_range);
}

TEST(Bdd, BooleanAlgebraLaws) {
  BddManager m(4);
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  EXPECT_EQ(m.bdd_and(a, b), m.bdd_and(b, a));
  EXPECT_EQ(m.bdd_or(a, b), m.bdd_or(b, a));
  EXPECT_EQ(m.bdd_and(a, kBddTrue), a);
  EXPECT_EQ(m.bdd_and(a, kBddFalse), kBddFalse);
  EXPECT_EQ(m.bdd_or(a, kBddFalse), a);
  EXPECT_EQ(m.bdd_not(m.bdd_not(a)), a);
  // De Morgan (canonicity makes this an identity on node ids).
  EXPECT_EQ(m.bdd_not(m.bdd_and(a, b)), m.bdd_or(m.bdd_not(a), m.bdd_not(b)));
  // a ⊕ b == (a ∧ ¬b) ∨ (¬a ∧ b)
  EXPECT_EQ(m.bdd_xor(a, b), m.bdd_or(m.bdd_diff(a, b), m.bdd_diff(b, a)));
  // Excluded middle / contradiction.
  EXPECT_EQ(m.bdd_or(a, m.bdd_not(a)), kBddTrue);
  EXPECT_EQ(m.bdd_and(a, m.bdd_not(a)), kBddFalse);
}

TEST(Bdd, ImpliesAndDisjoint) {
  BddManager m(4);
  const BddRef a = m.var(0);
  const BddRef ab = m.bdd_and(a, m.var(1));
  EXPECT_TRUE(m.implies(ab, a));
  EXPECT_FALSE(m.implies(a, ab));
  EXPECT_TRUE(m.disjoint(a, m.bdd_not(a)));
  EXPECT_FALSE(m.disjoint(a, ab));
}

TEST(Bdd, CubeBuildsConjunction) {
  BddManager m(8);
  const BddRef c = m.cube({{1, true}, {3, false}, {5, true}});
  EXPECT_EQ(c, m.bdd_and(m.var(1), m.bdd_and(m.nvar(3), m.var(5))));
  EXPECT_EQ(m.cube({}), kBddTrue);
}

TEST(Bdd, SatCount) {
  BddManager m(4);
  EXPECT_DOUBLE_EQ(m.sat_count(kBddTrue), 16.0);
  EXPECT_DOUBLE_EQ(m.sat_count(kBddFalse), 0.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(0)), 8.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.bdd_and(m.var(0), m.var(3))), 4.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.bdd_or(m.var(0), m.var(1))), 12.0);
}

TEST(Bdd, PickOneSatisfies) {
  BddManager m(6);
  const BddRef f = m.bdd_and(m.var(1), m.bdd_and(m.nvar(3), m.var(4)));
  const auto a = m.pick_one(f);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE((*a)[1]);
  EXPECT_FALSE((*a)[3]);
  EXPECT_TRUE((*a)[4]);
  EXPECT_FALSE(m.pick_one(kBddFalse).has_value());
}

TEST(BddGc, SweepsUnrootedNodesAndPreservesRoots) {
  BddManager m(8);
  const BddRef keep = m.bdd_and(m.var(0), m.var(1));
  m.add_ref(keep);

  // Build unrooted garbage.
  BddRef junk = kBddTrue;
  for (unsigned v = 2; v < 8; ++v) junk = m.bdd_and(junk, m.var(v));
  EXPECT_GT(m.node_count(), 4u);

  const std::size_t reclaimed = m.gc();
  EXPECT_GT(reclaimed, 0u);
  // Exactly keep's closure survives: two terminals, the x1 node (keep's
  // hi-branch), and keep itself. The standalone var(0) node is garbage.
  EXPECT_EQ(m.node_count(), 4u);
  // The rooted function keeps its hash-cons identity: rebuilding it yields
  // the same node id.
  EXPECT_EQ(m.bdd_and(m.var(0), m.var(1)), keep);
  EXPECT_DOUBLE_EQ(m.sat_count(keep), 64.0);
}

TEST(BddGc, MakeRecyclesFreedSlots) {
  BddManager m(8);
  BddRef junk = kBddTrue;
  for (unsigned v = 0; v < 8; ++v) junk = m.bdd_and(junk, m.var(v));
  const std::size_t cap = m.node_capacity();
  ASSERT_GT(m.gc(), 0u);
  // Rebuilding comparable structure reuses the freed slots instead of
  // growing the arena.
  BddRef again = kBddTrue;
  for (unsigned v = 0; v < 8; ++v) again = m.bdd_and(again, m.var(v));
  EXPECT_EQ(m.node_capacity(), cap);
  EXPECT_DOUBLE_EQ(m.sat_count(again), 1.0);
}

TEST(BddGc, RefcountsNestAndTerminalsAreImmortal) {
  BddManager m(4);
  const BddRef a = m.var(0);
  m.add_ref(a);
  m.add_ref(a);
  EXPECT_EQ(m.ref_count(a), 2u);
  m.release(a);
  EXPECT_EQ(m.ref_count(a), 1u);
  m.gc();  // one pin left: survives
  EXPECT_EQ(m.bdd_not(m.bdd_not(a)), a);

  // Terminals ignore pinning entirely.
  m.add_ref(kBddTrue);
  m.release(kBddFalse);
  EXPECT_EQ(m.ref_count(kBddTrue), 0u);

  m.release(a);
  EXPECT_EQ(m.ref_count(a), 0u);
  EXPECT_GE(m.gc(), 1u);
  EXPECT_EQ(m.node_count(), 2u);  // only the terminals remain
  EXPECT_TRUE(m.is_true(kBddTrue));
  EXPECT_TRUE(m.is_false(kBddFalse));
}

TEST(BddGc, SharedSubgraphsSurviveThroughAnyRoot) {
  BddManager m(4);
  const BddRef x1 = m.var(1);
  const BddRef f = m.bdd_and(m.var(0), x1);  // f's hi-branch IS the x1 node
  m.add_ref(f);
  m.gc();
  // x1 was never pinned directly but is reachable from f.
  EXPECT_EQ(m.var(1), x1);
  EXPECT_EQ(m.bdd_and(m.var(0), m.var(1)), f);
}

/// Property: BDD operations agree with brute-force truth-table evaluation
/// on random formulas over 8 variables.
TEST(BddProperty, MatchesTruthTables) {
  constexpr unsigned kVars = 8;
  BddManager m(kVars);
  core::Rng rng{404};

  using Table = std::vector<bool>;  // 256 entries
  auto eval_var = [](unsigned v, unsigned assignment) {
    return ((assignment >> v) & 1u) != 0;
  };

  // Build random (bdd, table) pairs bottom-up.
  std::vector<std::pair<BddRef, Table>> pool;
  for (unsigned v = 0; v < kVars; ++v) {
    Table t(256);
    for (unsigned a = 0; a < 256; ++a) t[a] = eval_var(v, a);
    pool.push_back({m.var(v), t});
  }
  for (int step = 0; step < 200; ++step) {
    const auto& [fa, ta] = pool[rng.next_below(pool.size())];
    const auto& [fb, tb] = pool[rng.next_below(pool.size())];
    const int op = static_cast<int>(rng.next_below(4));
    BddRef f;
    Table t(256);
    for (unsigned a = 0; a < 256; ++a) {
      switch (op) {
        case 0:
          t[a] = ta[a] && tb[a];
          break;
        case 1:
          t[a] = ta[a] || tb[a];
          break;
        case 2:
          t[a] = ta[a] != tb[a];
          break;
        default:
          t[a] = !ta[a];
          break;
      }
    }
    switch (op) {
      case 0:
        f = m.bdd_and(fa, fb);
        break;
      case 1:
        f = m.bdd_or(fa, fb);
        break;
      case 2:
        f = m.bdd_xor(fa, fb);
        break;
      default:
        f = m.bdd_not(fa);
        break;
    }
    // Verify against the table via sat_count and spot checks.
    unsigned ones = 0;
    for (unsigned a = 0; a < 256; ++a) ones += t[a] ? 1 : 0;
    ASSERT_DOUBLE_EQ(m.sat_count(f), static_cast<double>(ones)) << "step " << step;
    // Canonicity: identical tables => identical node ids.
    for (const auto& [g, tg] : pool) {
      if (tg == t) {
        ASSERT_EQ(g, f);
      }
    }
    pool.push_back({f, std::move(t)});
  }
}

}  // namespace
}  // namespace rcfg::dpm
