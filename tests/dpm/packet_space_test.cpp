#include "dpm/packet_space.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace rcfg::dpm {
namespace {

net::Ipv4Prefix pfx(const char* s) { return *net::Ipv4Prefix::parse(s); }

TEST(PacketSpace, DstPrefixCardinality) {
  PacketSpace s;
  // A /24 constrains 24 of 98 bits: 2^(98-24) satisfying assignments.
  const BddRef p = s.dst_prefix(pfx("10.1.2.0/24"));
  EXPECT_DOUBLE_EQ(s.bdd().sat_count(p), std::pow(2.0, 98 - 24));
  EXPECT_EQ(s.dst_prefix(pfx("0.0.0.0/0")), kBddTrue);
}

TEST(PacketSpace, PrefixContainmentMirrorsBddImplication) {
  PacketSpace s;
  const BddRef p8 = s.dst_prefix(pfx("10.0.0.0/8"));
  const BddRef p16 = s.dst_prefix(pfx("10.1.0.0/16"));
  const BddRef other = s.dst_prefix(pfx("11.0.0.0/8"));
  EXPECT_TRUE(s.bdd().implies(p16, p8));
  EXPECT_FALSE(s.bdd().implies(p8, p16));
  EXPECT_TRUE(s.bdd().disjoint(p8, other));
}

TEST(PacketSpace, SrcAndDstAreIndependentFields) {
  PacketSpace s;
  const BddRef d = s.dst_prefix(pfx("10.0.0.0/8"));
  const BddRef src = s.src_prefix(pfx("10.0.0.0/8"));
  EXPECT_NE(d, src);
  EXPECT_FALSE(s.bdd().disjoint(d, src));  // both constraints can hold
}

TEST(PacketSpace, ProtoEncoding) {
  PacketSpace s;
  const BddRef tcp = s.proto(config::IpProto::kTcp);
  const BddRef udp = s.proto(config::IpProto::kUdp);
  const BddRef icmp = s.proto(config::IpProto::kIcmp);
  EXPECT_TRUE(s.bdd().disjoint(tcp, udp));
  EXPECT_TRUE(s.bdd().disjoint(tcp, icmp));
  EXPECT_TRUE(s.bdd().disjoint(udp, icmp));
  EXPECT_EQ(s.proto(config::IpProto::kAny), kBddTrue);
}

TEST(PacketSpace, PortRangeCardinality) {
  PacketSpace s;
  EXPECT_EQ(s.dst_port_range(0, 65535), kBddTrue);
  const BddRef one = s.dst_port_range(80, 80);
  EXPECT_DOUBLE_EQ(s.bdd().sat_count(one), std::pow(2.0, 98 - 16));
  const BddRef range = s.dst_port_range(1000, 1999);
  EXPECT_DOUBLE_EQ(s.bdd().sat_count(range), 1000.0 * std::pow(2.0, 98 - 16));
  EXPECT_EQ(s.dst_port_range(5, 4), kBddFalse);
}

/// Property: random port ranges have exactly (hi-lo+1) * 2^82 solutions and
/// nest/intersect correctly.
TEST(PacketSpaceProperty, RandomPortRanges) {
  PacketSpace s;
  core::Rng rng{808};
  for (int trial = 0; trial < 50; ++trial) {
    const auto lo = static_cast<std::uint16_t>(rng.next_below(65536));
    const auto hi = static_cast<std::uint16_t>(lo + rng.next_below(65536 - lo));
    const BddRef r = s.src_port_range(lo, hi);
    ASSERT_DOUBLE_EQ(s.bdd().sat_count(r),
                     (static_cast<double>(hi) - lo + 1) * std::pow(2.0, 98 - 16));
    // A sub-range implies the range.
    if (hi > lo) {
      const BddRef sub = s.src_port_range(lo + 1, hi);
      ASSERT_TRUE(s.bdd().implies(sub, r));
    }
  }
}

TEST(PacketSpace, FilterMatchConjunction) {
  PacketSpace s;
  routing::FilterRule r;
  r.proto = static_cast<std::uint8_t>(config::IpProto::kTcp);
  r.src = pfx("10.0.0.0/8");
  r.dst = pfx("192.168.0.0/16");
  r.dst_port_lo = 80;
  r.dst_port_hi = 80;
  const BddRef m = s.filter_match(r);
  // 8 + 16 dst... : src /8 (8 bits) + dst /16 (16) + proto (2) + dport (16)
  EXPECT_DOUBLE_EQ(s.bdd().sat_count(m), std::pow(2.0, 98 - 8 - 16 - 2 - 16));
}

TEST(PacketSpace, AclPermitFirstMatchWins) {
  PacketSpace s;
  // 10 permit tcp any eq 80; 20 deny tcp; 30 permit ip any any
  routing::FilterRule permit_web;
  permit_web.priority = 0;
  permit_web.permit = true;
  permit_web.proto = static_cast<std::uint8_t>(config::IpProto::kTcp);
  permit_web.dst_port_lo = permit_web.dst_port_hi = 80;
  routing::FilterRule deny_tcp;
  deny_tcp.priority = 1;
  deny_tcp.permit = false;
  deny_tcp.proto = static_cast<std::uint8_t>(config::IpProto::kTcp);
  routing::FilterRule permit_all;
  permit_all.priority = 2;
  permit_all.permit = true;

  const BddRef permit = s.acl_permit_set({permit_web, deny_tcp, permit_all});
  const BddRef tcp80 = s.bdd().bdd_and(s.proto(config::IpProto::kTcp), s.dst_port_range(80, 80));
  const BddRef tcp22 = s.bdd().bdd_and(s.proto(config::IpProto::kTcp), s.dst_port_range(22, 22));
  const BddRef icmp = s.proto(config::IpProto::kIcmp);
  EXPECT_TRUE(s.bdd().implies(tcp80, permit));
  EXPECT_TRUE(s.bdd().disjoint(tcp22, permit));
  EXPECT_TRUE(s.bdd().implies(icmp, permit));
}

TEST(PacketSpace, EmptyAclDeniesEverything) {
  PacketSpace s;
  EXPECT_EQ(s.acl_permit_set({}), kBddFalse);
}

TEST(PacketSpace, DstOfRoundTrip) {
  PacketSpace s;
  const auto addr = *net::Ipv4Addr::parse("10.1.2.3");
  const BddRef p = s.dst_prefix(net::Ipv4Prefix{addr, 32});
  const auto assignment = s.bdd().pick_one(p);
  ASSERT_TRUE(assignment.has_value());
  EXPECT_EQ(PacketSpace::dst_of(*assignment), addr);
}

}  // namespace
}  // namespace rcfg::dpm
