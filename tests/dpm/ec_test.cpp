#include "dpm/ec.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace rcfg::dpm {
namespace {

net::Ipv4Prefix pfx(const char* s) { return *net::Ipv4Prefix::parse(s); }

/// Partition invariants: atoms are pairwise disjoint, nonempty, and cover
/// the full space.
void check_partition(PacketSpace& s, const EcManager& ecs) {
  BddManager& bdd = s.bdd();
  BddRef cover = kBddFalse;
  for (EcId i = 0; i < ecs.ec_count(); ++i) {
    ASSERT_NE(ecs.ec_bdd(i), kBddFalse) << "empty atom " << i;
    for (EcId j = i + 1; j < ecs.ec_count(); ++j) {
      ASSERT_TRUE(bdd.disjoint(ecs.ec_bdd(i), ecs.ec_bdd(j)))
          << "atoms " << i << " and " << j << " overlap";
    }
    cover = bdd.bdd_or(cover, ecs.ec_bdd(i));
  }
  ASSERT_EQ(cover, kBddTrue) << "atoms do not cover the space";
}

TEST(EcManager, StartsWithOneUniversalEc) {
  PacketSpace s;
  EcManager ecs(s);
  EXPECT_EQ(ecs.ec_count(), 1u);
  EXPECT_EQ(ecs.ec_bdd(0), kBddTrue);
}

TEST(EcManager, FirstPredicateSplitsInTwo) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef p = s.dst_prefix(pfx("10.0.0.0/8"));
  const auto splits = ecs.register_predicate(p);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].parent, 0u);
  EXPECT_EQ(splits[0].child, 1u);
  EXPECT_EQ(ecs.ec_count(), 2u);
  // Child holds the inside part.
  EXPECT_EQ(ecs.ec_bdd(1), p);
  check_partition(s, ecs);
}

TEST(EcManager, DuplicateRegistrationNoSplit) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef p = s.dst_prefix(pfx("10.0.0.0/8"));
  ecs.register_predicate(p);
  EXPECT_TRUE(ecs.register_predicate(p).empty());
  EXPECT_EQ(ecs.ec_count(), 2u);
}

TEST(EcManager, DisjointPrefixesGrowLinearly) {
  // APKeep's headline property: n disjoint prefixes => n+1 atoms, not 2^n.
  PacketSpace s;
  EcManager ecs(s);
  for (unsigned i = 0; i < 16; ++i) {
    ecs.register_predicate(s.dst_prefix(net::Ipv4Prefix{net::Ipv4Addr{10, 0, (uint8_t)i, 0}, 24}));
  }
  EXPECT_EQ(ecs.ec_count(), 17u);
  check_partition(s, ecs);
}

TEST(EcManager, NestedPrefixesSplitCorrectly) {
  PacketSpace s;
  EcManager ecs(s);
  ecs.register_predicate(s.dst_prefix(pfx("10.0.0.0/8")));
  ecs.register_predicate(s.dst_prefix(pfx("10.1.0.0/16")));
  // Atoms: outside /8; /8 minus /16; /16. => 3
  EXPECT_EQ(ecs.ec_count(), 3u);
  check_partition(s, ecs);
}

TEST(EcManager, EcsInRequiresContainment) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef p8 = s.dst_prefix(pfx("10.0.0.0/8"));
  const BddRef p16 = s.dst_prefix(pfx("10.1.0.0/16"));
  ecs.register_predicate(p8);
  ecs.register_predicate(p16);

  const auto in8 = ecs.ecs_in(p8);
  EXPECT_EQ(in8.size(), 2u);  // (/8 minus /16) and /16
  const auto in16 = ecs.ecs_in(p16);
  EXPECT_EQ(in16.size(), 1u);
  EXPECT_TRUE(ecs.ecs_in(kBddFalse).empty());
  EXPECT_EQ(ecs.ecs_in(kBddTrue).size(), ecs.ec_count());
}

TEST(EcManager, EcOfFindsTheAtom) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef p = s.dst_prefix(pfx("10.0.0.0/8"));
  ecs.register_predicate(p);
  const EcId inside = ecs.ec_of(s.dst_prefix(pfx("10.1.2.3/32")));
  const EcId outside = ecs.ec_of(s.dst_prefix(pfx("192.168.0.1/32")));
  EXPECT_NE(inside, outside);
  EXPECT_EQ(ecs.ec_bdd(inside), p);
}

TEST(EcManager, CompactRebuildsMinimalPartition) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef a = s.dst_prefix(pfx("10.0.0.0/8"));
  const BddRef b = s.dst_prefix(pfx("20.0.0.0/8"));
  ecs.register_predicate(a);
  ecs.register_predicate(b);
  EXPECT_EQ(ecs.ec_count(), 3u);
  ecs.unregister_predicate(b);
  ecs.compact();
  EXPECT_EQ(ecs.ec_count(), 2u);  // only `a` still referenced
  check_partition(s, ecs);
}

TEST(EcManager, RefcountLifecycle) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef p = s.dst_prefix(pfx("10.0.0.0/8"));
  EXPECT_EQ(ecs.predicate_refs(p), 0u);
  ecs.register_predicate(p);
  ecs.register_predicate(p);
  EXPECT_EQ(ecs.predicate_refs(p), 2u);
  EXPECT_GT(s.bdd().ref_count(p), 0u);  // registered => pinned as a GC root
  ecs.unregister_predicate(p);
  EXPECT_EQ(ecs.predicate_refs(p), 1u);
  EXPECT_EQ(ecs.dropped_since_compact(), 0u);
  ecs.unregister_predicate(p);
  EXPECT_EQ(ecs.predicate_refs(p), 0u);
  EXPECT_EQ(ecs.predicate_count(), 0u);
  EXPECT_EQ(ecs.dropped_since_compact(), 1u);
  // Re-registering against the still-refined partition splits nothing.
  EXPECT_TRUE(ecs.register_predicate(p).empty());
  EXPECT_EQ(ecs.predicate_refs(p), 1u);
  EXPECT_EQ(ecs.stats().unknown_unregisters, 0u);
}

TEST(EcManager, TrivialPredicatesAreNeverTracked) {
  PacketSpace s;
  EcManager ecs(s);
  EXPECT_TRUE(ecs.register_predicate(kBddTrue).empty());
  EXPECT_TRUE(ecs.register_predicate(kBddFalse).empty());
  EXPECT_EQ(ecs.predicate_count(), 0u);
  ecs.unregister_predicate(kBddTrue);  // mirrors register: a no-op, not a bug
  ecs.unregister_predicate(kBddFalse);
  EXPECT_EQ(ecs.stats().unknown_unregisters, 0u);
}

TEST(EcManagerDeathTest, UnknownUnregisterAssertsAndCounts) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef p = s.dst_prefix(pfx("10.0.0.0/8"));
  // Debug builds assert (a register/unregister pairing bug); release
  // builds survive and count the event instead of masking it.
  EXPECT_DEBUG_DEATH(ecs.unregister_predicate(p), "never registered");
#ifdef NDEBUG
  EXPECT_EQ(ecs.stats().unknown_unregisters, 1u);
#endif
}

TEST(EcManager, CompactMergesAndNotifiesRemapListeners) {
  PacketSpace s;
  EcManager ecs(s);
  std::vector<EcRemap> seen;
  ecs.subscribe_remap([&](const EcRemap& r) { seen.push_back(r); });
  const BddRef a = s.dst_prefix(pfx("10.0.0.0/8"));
  const BddRef b = s.dst_prefix(pfx("10.1.0.0/16"));
  ecs.register_predicate(a);
  ecs.register_predicate(b);
  ASSERT_EQ(ecs.ec_count(), 3u);  // outside /8; /8 minus /16; /16
  ecs.unregister_predicate(b);
  const auto remap = ecs.compact();
  ASSERT_TRUE(remap.has_value());
  EXPECT_EQ(remap->new_count, 2u);
  ASSERT_EQ(remap->forward.size(), 3u);
  EXPECT_EQ(remap->forward[0], 0u);  // unmerged prefix keeps its id
  EXPECT_EQ(remap->forward[1], remap->forward[2]);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].forward, remap->forward);
  check_partition(s, ecs);
  // The merged atom is exactly the still-registered predicate.
  EXPECT_EQ(ecs.ec_bdd(remap->forward[1]), a);
  EXPECT_EQ(ecs.stats().compactions, 1u);
  EXPECT_EQ(ecs.stats().merged_atoms, 1u);
  EXPECT_EQ(ecs.dropped_since_compact(), 0u);
  // A minimal partition compacts to nothing.
  EXPECT_FALSE(ecs.compact().has_value());
}

TEST(EcManager, CompactPreservesRefcountsAndPartitionSemantics) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef a = s.dst_prefix(pfx("10.0.0.0/8"));
  const BddRef b = s.dst_prefix(pfx("20.0.0.0/8"));
  const BddRef c = s.src_prefix(pfx("30.0.0.0/8"));
  ecs.register_predicate(a);
  ecs.register_predicate(a);
  ecs.register_predicate(b);
  ecs.register_predicate(c);
  ecs.unregister_predicate(b);
  ASSERT_TRUE(ecs.compact().has_value());
  EXPECT_EQ(ecs.predicate_refs(a), 2u);
  EXPECT_EQ(ecs.predicate_refs(c), 1u);
  EXPECT_EQ(ecs.ec_count(), 4u);  // {a, not a} x {c, not c}
  check_partition(s, ecs);
  // Every surviving predicate is still a union of atoms.
  for (const BddRef p : {a, c}) {
    BddRef uni = kBddFalse;
    for (EcId e : ecs.ecs_in(p)) uni = s.bdd().bdd_or(uni, ecs.ec_bdd(e));
    EXPECT_EQ(uni, p);
  }
}

TEST(EcManager, EcsInFastPathsMatchFullScan) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef a = s.dst_prefix(pfx("10.0.0.0/8"));
  ecs.register_predicate(a);
  ecs.register_predicate(s.dst_prefix(pfx("10.1.0.0/16")));

  // Single-atom fast path: an atom's own BDD names exactly that atom.
  for (EcId i = 0; i < ecs.ec_count(); ++i) {
    const auto v = ecs.ecs_in(ecs.ec_bdd(i));
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], i);
  }

  const auto check_members = [&](BddRef p) {
    std::vector<EcId> expect;
    for (EcId i = 0; i < ecs.ec_count(); ++i) {
      if (!s.bdd().disjoint(ecs.ec_bdd(i), p)) expect.push_back(i);
    }
    EXPECT_EQ(ecs.ecs_in(p), expect);
  };
  check_members(a);  // fills the per-predicate cache
  // A later registration splits atoms; the cached list must follow.
  ecs.register_predicate(s.src_prefix(pfx("30.0.0.0/8")));
  check_members(a);
  // And survive a compact (ids renumbered wholesale).
  ecs.unregister_predicate(s.dst_prefix(pfx("10.1.0.0/16")));
  ASSERT_TRUE(ecs.compact().has_value());
  check_members(a);
}

/// Property: after registering random (overlapping) predicates the atom set
/// is always a partition, and each predicate is exactly a union of atoms.
TEST(EcManagerProperty, RandomPredicatesKeepInvariants) {
  core::Rng rng{5555};
  PacketSpace s;
  EcManager ecs(s);
  std::vector<BddRef> preds;
  for (int i = 0; i < 24; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.next_in(4, 16));
    const net::Ipv4Prefix p{net::Ipv4Addr{static_cast<std::uint32_t>(rng.next())}, len};
    const BddRef bp = s.dst_prefix(p);
    preds.push_back(bp);
    ecs.register_predicate(bp);
  }
  check_partition(s, ecs);
  for (const BddRef p : preds) {
    BddRef uni = kBddFalse;
    for (EcId e : ecs.ecs_in(p)) {
      ASSERT_TRUE(s.bdd().implies(ecs.ec_bdd(e), p));
      uni = s.bdd().bdd_or(uni, ecs.ec_bdd(e));
    }
    ASSERT_EQ(uni, p) << "predicate is not a union of atoms";
  }
}

}  // namespace
}  // namespace rcfg::dpm
