#include "dpm/ec.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace rcfg::dpm {
namespace {

net::Ipv4Prefix pfx(const char* s) { return *net::Ipv4Prefix::parse(s); }

/// Partition invariants: atoms are pairwise disjoint, nonempty, and cover
/// the full space.
void check_partition(PacketSpace& s, const EcManager& ecs) {
  BddManager& bdd = s.bdd();
  BddRef cover = kBddFalse;
  for (EcId i = 0; i < ecs.ec_count(); ++i) {
    ASSERT_NE(ecs.ec_bdd(i), kBddFalse) << "empty atom " << i;
    for (EcId j = i + 1; j < ecs.ec_count(); ++j) {
      ASSERT_TRUE(bdd.disjoint(ecs.ec_bdd(i), ecs.ec_bdd(j)))
          << "atoms " << i << " and " << j << " overlap";
    }
    cover = bdd.bdd_or(cover, ecs.ec_bdd(i));
  }
  ASSERT_EQ(cover, kBddTrue) << "atoms do not cover the space";
}

TEST(EcManager, StartsWithOneUniversalEc) {
  PacketSpace s;
  EcManager ecs(s);
  EXPECT_EQ(ecs.ec_count(), 1u);
  EXPECT_EQ(ecs.ec_bdd(0), kBddTrue);
}

TEST(EcManager, FirstPredicateSplitsInTwo) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef p = s.dst_prefix(pfx("10.0.0.0/8"));
  const auto splits = ecs.register_predicate(p);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].parent, 0u);
  EXPECT_EQ(splits[0].child, 1u);
  EXPECT_EQ(ecs.ec_count(), 2u);
  // Child holds the inside part.
  EXPECT_EQ(ecs.ec_bdd(1), p);
  check_partition(s, ecs);
}

TEST(EcManager, DuplicateRegistrationNoSplit) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef p = s.dst_prefix(pfx("10.0.0.0/8"));
  ecs.register_predicate(p);
  EXPECT_TRUE(ecs.register_predicate(p).empty());
  EXPECT_EQ(ecs.ec_count(), 2u);
}

TEST(EcManager, DisjointPrefixesGrowLinearly) {
  // APKeep's headline property: n disjoint prefixes => n+1 atoms, not 2^n.
  PacketSpace s;
  EcManager ecs(s);
  for (unsigned i = 0; i < 16; ++i) {
    ecs.register_predicate(s.dst_prefix(net::Ipv4Prefix{net::Ipv4Addr{10, 0, (uint8_t)i, 0}, 24}));
  }
  EXPECT_EQ(ecs.ec_count(), 17u);
  check_partition(s, ecs);
}

TEST(EcManager, NestedPrefixesSplitCorrectly) {
  PacketSpace s;
  EcManager ecs(s);
  ecs.register_predicate(s.dst_prefix(pfx("10.0.0.0/8")));
  ecs.register_predicate(s.dst_prefix(pfx("10.1.0.0/16")));
  // Atoms: outside /8; /8 minus /16; /16. => 3
  EXPECT_EQ(ecs.ec_count(), 3u);
  check_partition(s, ecs);
}

TEST(EcManager, EcsInRequiresContainment) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef p8 = s.dst_prefix(pfx("10.0.0.0/8"));
  const BddRef p16 = s.dst_prefix(pfx("10.1.0.0/16"));
  ecs.register_predicate(p8);
  ecs.register_predicate(p16);

  const auto in8 = ecs.ecs_in(p8);
  EXPECT_EQ(in8.size(), 2u);  // (/8 minus /16) and /16
  const auto in16 = ecs.ecs_in(p16);
  EXPECT_EQ(in16.size(), 1u);
  EXPECT_TRUE(ecs.ecs_in(kBddFalse).empty());
  EXPECT_EQ(ecs.ecs_in(kBddTrue).size(), ecs.ec_count());
}

TEST(EcManager, EcOfFindsTheAtom) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef p = s.dst_prefix(pfx("10.0.0.0/8"));
  ecs.register_predicate(p);
  const EcId inside = ecs.ec_of(s.dst_prefix(pfx("10.1.2.3/32")));
  const EcId outside = ecs.ec_of(s.dst_prefix(pfx("192.168.0.1/32")));
  EXPECT_NE(inside, outside);
  EXPECT_EQ(ecs.ec_bdd(inside), p);
}

TEST(EcManager, CompactRebuildsMinimalPartition) {
  PacketSpace s;
  EcManager ecs(s);
  const BddRef a = s.dst_prefix(pfx("10.0.0.0/8"));
  const BddRef b = s.dst_prefix(pfx("20.0.0.0/8"));
  ecs.register_predicate(a);
  ecs.register_predicate(b);
  EXPECT_EQ(ecs.ec_count(), 3u);
  ecs.unregister_predicate(b);
  ecs.compact();
  EXPECT_EQ(ecs.ec_count(), 2u);  // only `a` still referenced
  check_partition(s, ecs);
}

/// Property: after registering random (overlapping) predicates the atom set
/// is always a partition, and each predicate is exactly a union of atoms.
TEST(EcManagerProperty, RandomPredicatesKeepInvariants) {
  core::Rng rng{5555};
  PacketSpace s;
  EcManager ecs(s);
  std::vector<BddRef> preds;
  for (int i = 0; i < 24; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.next_in(4, 16));
    const net::Ipv4Prefix p{net::Ipv4Addr{static_cast<std::uint32_t>(rng.next())}, len};
    const BddRef bp = s.dst_prefix(p);
    preds.push_back(bp);
    ecs.register_predicate(bp);
  }
  check_partition(s, ecs);
  for (const BddRef p : preds) {
    BddRef uni = kBddFalse;
    for (EcId e : ecs.ecs_in(p)) {
      ASSERT_TRUE(s.bdd().implies(ecs.ec_bdd(e), p));
      uni = s.bdd().bdd_or(uni, ecs.ec_bdd(e));
    }
    ASSERT_EQ(uni, p) << "predicate is not a union of atoms";
  }
}

}  // namespace
}  // namespace rcfg::dpm
