// Backend-parity suite: the interval-atom and BDD packet-space backends
// must be observationally identical through the EcManager — same split
// sequences, same EC ids, same membership answers, same remaps — and the
// interval backend's own set algebra must agree with the BDD oracle on
// every operation. The parameterized fixture replays identical scripts on
// a reference kBdd stack and the backend under test; the interval-specific
// tests pin the edge cases (/0, /32, adjacent-range coalescing, minimal
// witnesses) that the shared scripts could miss.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.h"
#include "dpm/ec.h"
#include "dpm/interval_set.h"
#include "dpm/packet_space.h"

namespace rcfg::dpm {
namespace {

net::Ipv4Prefix pfx(const char* s) { return *net::Ipv4Prefix::parse(s); }

/// Partition invariants via the facade (works for either backend): atoms
/// pairwise disjoint, nonempty, covering the full space.
void check_partition(PacketSpace& s, const EcManager& ecs) {
  BddRef cover = kBddFalse;
  for (EcId i = 0; i < ecs.ec_count(); ++i) {
    ASSERT_NE(ecs.ec_bdd(i), kBddFalse) << "empty atom " << i;
    for (EcId j = i + 1; j < ecs.ec_count(); ++j) {
      ASSERT_TRUE(s.disjoint(ecs.ec_bdd(i), ecs.ec_bdd(j)))
          << "atoms " << i << " and " << j << " overlap";
    }
    cover = s.set_or(cover, ecs.ec_bdd(i));
  }
  ASSERT_EQ(cover, kBddTrue) << "atoms do not cover the space";
}

/// A deterministic mixed script of prefixes: nested, disjoint, adjacent,
/// and the /0 and /32 extremes.
std::vector<net::Ipv4Prefix> script_prefixes() {
  return {pfx("10.0.0.0/8"),    pfx("10.1.0.0/16"),   pfx("10.1.2.0/24"),
          pfx("20.0.0.0/8"),    pfx("10.0.0.0/9"),    pfx("10.128.0.0/9"),
          pfx("0.0.0.0/0"),     pfx("10.1.2.3/32"),   pfx("192.168.0.0/24"),
          pfx("192.168.1.0/24"), pfx("10.1.0.0/16"),  pfx("172.16.0.0/12")};
}

class BackendParity : public ::testing::TestWithParam<BackendKind> {};

INSTANTIATE_TEST_SUITE_P(Backends, BackendParity,
                         ::testing::Values(BackendKind::kBdd, BackendKind::kInterval,
                                           BackendKind::kAuto),
                         [](const auto& info) { return to_string(info.param); });

TEST_P(BackendParity, RegisterSplitsAreBitIdentical) {
  PacketSpace ref_space;  // kBdd reference
  EcManager ref(ref_space);
  PacketSpace space(GetParam());
  EcManager ecs(space);

  for (const net::Ipv4Prefix& p : script_prefixes()) {
    const auto want = ref.register_predicate(ref_space.dst_prefix(p));
    const auto got = ecs.register_predicate(space.dst_prefix(p));
    ASSERT_EQ(got.size(), want.size()) << p.to_string();
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].parent, want[i].parent);
      EXPECT_EQ(got[i].child, want[i].child);
    }
  }
  ASSERT_EQ(ecs.ec_count(), ref.ec_count());
  check_partition(space, ecs);
  // Same membership answers per EC id: each atom denotes the same set.
  for (const net::Ipv4Prefix& p : script_prefixes()) {
    EXPECT_EQ(ecs.ecs_in(space.dst_prefix(p)), ref.ecs_in(ref_space.dst_prefix(p)))
        << p.to_string();
  }
}

TEST_P(BackendParity, EcOfAgreesWithReference) {
  PacketSpace ref_space;
  EcManager ref(ref_space);
  PacketSpace space(GetParam());
  EcManager ecs(space);
  for (const net::Ipv4Prefix& p : script_prefixes()) {
    ref.register_predicate(ref_space.dst_prefix(p));
    ecs.register_predicate(space.dst_prefix(p));
  }
  for (const char* a : {"10.1.2.3/32", "10.1.9.9/32", "10.200.0.1/32", "20.0.0.1/32",
                        "172.16.1.1/32", "192.168.1.77/32", "8.8.8.8/32"}) {
    EXPECT_EQ(ecs.ec_of(space.dst_prefix(pfx(a))), ref.ec_of(ref_space.dst_prefix(pfx(a))))
        << a;
  }
}

TEST_P(BackendParity, UnregisterCompactRemapsIdentically) {
  PacketSpace ref_space;
  EcManager ref(ref_space);
  PacketSpace space(GetParam());
  EcManager ecs(space);
  const auto script = script_prefixes();
  for (const net::Ipv4Prefix& p : script) {
    ref.register_predicate(ref_space.dst_prefix(p));
    ecs.register_predicate(space.dst_prefix(p));
  }
  // Withdraw every other prefix, then compact both stacks.
  for (std::size_t i = 0; i < script.size(); i += 2) {
    ref.unregister_predicate(ref_space.dst_prefix(script[i]));
    ecs.unregister_predicate(space.dst_prefix(script[i]));
  }
  const auto want = ref.compact();
  const auto got = ecs.compact();
  ASSERT_EQ(got.has_value(), want.has_value());
  if (got) {
    EXPECT_EQ(got->forward, want->forward);
    EXPECT_EQ(got->new_count, want->new_count);
  }
  EXPECT_EQ(ecs.ec_count(), ref.ec_count());
  check_partition(space, ecs);
  // Boundary coalescing after compact: the merged atoms must behave as one
  // coalesced set, so re-registering a withdrawn prefix splits again in the
  // same places on both stacks.
  for (std::size_t i = 0; i < script.size(); i += 2) {
    const auto w = ref.register_predicate(ref_space.dst_prefix(script[i]));
    const auto g = ecs.register_predicate(space.dst_prefix(script[i]));
    ASSERT_EQ(g.size(), w.size());
    for (std::size_t k = 0; k < g.size(); ++k) {
      EXPECT_EQ(g[k].parent, w[k].parent);
      EXPECT_EQ(g[k].child, w[k].child);
    }
  }
  EXPECT_EQ(ecs.ec_count(), ref.ec_count());
}

TEST_P(BackendParity, SnapshotRestoreRoundTrips) {
  PacketSpace space(GetParam());
  EcManager ecs(space);
  ecs.register_predicate(space.dst_prefix(pfx("10.0.0.0/8")));
  ecs.register_predicate(space.dst_prefix(pfx("10.1.0.0/16")));
  const std::size_t count_at_snap = ecs.ec_count();
  const auto ec_snap = ecs.snapshot();
  const PacketSpace space_snap = space;  // value copy, listeners dropped

  ecs.register_predicate(space.dst_prefix(pfx("30.0.0.0/8")));
  ecs.register_predicate(space.dst_prefix(pfx("40.0.0.0/8")));
  ecs.unregister_predicate(space.dst_prefix(pfx("10.1.0.0/16")));
  ecs.compact();
  ASSERT_NE(ecs.ec_count(), count_at_snap);

  space = space_snap;
  ecs.restore(ec_snap);
  EXPECT_EQ(ecs.ec_count(), count_at_snap);
  check_partition(space, ecs);
  // Post-restore the stack keeps working: fresh registrations still split.
  const auto splits = ecs.register_predicate(space.dst_prefix(pfx("10.1.2.0/24")));
  EXPECT_FALSE(splits.empty());
  check_partition(space, ecs);
}

TEST_P(BackendParity, WitnessAndCountsMatchReference) {
  PacketSpace ref_space;
  EcManager ref(ref_space);
  PacketSpace space(GetParam());
  EcManager ecs(space);
  for (const net::Ipv4Prefix& p : script_prefixes()) {
    ref.register_predicate(ref_space.dst_prefix(p));
    ecs.register_predicate(space.dst_prefix(p));
  }
  ASSERT_EQ(ecs.ec_count(), ref.ec_count());
  for (EcId e = 0; e < ecs.ec_count(); ++e) {
    EXPECT_EQ(space.pick_one(ecs.ec_bdd(e)), ref_space.pick_one(ref.ec_bdd(e)))
        << "witness for EC " << e;
    EXPECT_EQ(space.sat_count(ecs.ec_bdd(e)), ref_space.sat_count(ref.ec_bdd(e)))
        << "sat_count for EC " << e;
  }
}

TEST_P(BackendParity, RandomScriptsStayBitIdentical) {
  core::Rng rng{0xBACC0000u + static_cast<unsigned>(GetParam())};
  PacketSpace ref_space;
  EcManager ref(ref_space);
  PacketSpace space(GetParam());
  EcManager ecs(space);
  std::vector<net::Ipv4Prefix> live;
  for (int step = 0; step < 120; ++step) {
    if (live.empty() || rng.next_in(0, 3) != 0) {
      const auto len = static_cast<std::uint8_t>(rng.next_in(0, 32));
      const net::Ipv4Prefix p{net::Ipv4Addr{static_cast<std::uint32_t>(rng.next())}, len};
      live.push_back(p);
      const auto want = ref.register_predicate(ref_space.dst_prefix(p));
      const auto got = ecs.register_predicate(space.dst_prefix(p));
      ASSERT_EQ(got.size(), want.size()) << "step " << step;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].parent, want[i].parent);
        ASSERT_EQ(got[i].child, want[i].child);
      }
    } else {
      const std::size_t k = rng.next_in(0, live.size() - 1);
      ref.unregister_predicate(ref_space.dst_prefix(live[k]));
      ecs.unregister_predicate(space.dst_prefix(live[k]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      if (rng.next_in(0, 4) == 0) {
        const auto want = ref.compact();
        const auto got = ecs.compact();
        ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
        if (got) {
          ASSERT_EQ(got->forward, want->forward);
          ASSERT_EQ(got->new_count, want->new_count);
        }
      }
    }
    ASSERT_EQ(ecs.ec_count(), ref.ec_count()) << "step " << step;
  }
  check_partition(space, ecs);
}

// ---- interval-backend specifics -------------------------------------------

TEST(IntervalBackend, TerminalAndTaggedHandles) {
  PacketSpace s(BackendKind::kInterval);
  EXPECT_EQ(s.active_backend(), BackendKind::kInterval);
  EXPECT_EQ(s.requested_backend(), BackendKind::kInterval);
  // /0 is the whole space: the shared true terminal, not an arena entry.
  EXPECT_EQ(s.dst_prefix(pfx("0.0.0.0/0")), kBddTrue);
  const BddRef p = s.dst_prefix(pfx("10.0.0.0/8"));
  EXPECT_TRUE(is_interval_ref(p));
  // Hash-consing: the same prefix interns to the same handle.
  EXPECT_EQ(s.dst_prefix(pfx("10.0.0.0/8")), p);
}

TEST(IntervalBackend, Slash32IsOneAddress) {
  PacketSpace s(BackendKind::kInterval);
  const BddRef p = s.dst_prefix(pfx("10.1.2.3/32"));
  EXPECT_EQ(s.interval().address_count(p), 1u);
  // One dst address x 2^66 free non-dst variable assignments.
  PacketSpace b;  // BDD reference
  EXPECT_EQ(s.sat_count(p), b.sat_count(b.dst_prefix(pfx("10.1.2.3/32"))));
  const auto w = s.pick_one(p);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(PacketSpace::dst_of(*w), net::Ipv4Addr(10, 1, 2, 3));
}

TEST(IntervalBackend, AdjacentRangesCoalesce) {
  PacketSpace s(BackendKind::kInterval);
  const BddRef lo = s.dst_prefix(pfx("10.0.0.0/25"));
  const BddRef hi = s.dst_prefix(pfx("10.0.0.128/25"));
  // The union of two adjacent halves IS the covering /24 — same handle,
  // because canonicalization coalesces the boundary and interning is by
  // canonical form.
  EXPECT_EQ(s.set_or(lo, hi), s.dst_prefix(pfx("10.0.0.0/24")));
  // Complement halves reassemble the full space exactly.
  const BddRef p = s.dst_prefix(pfx("77.0.0.0/8"));
  EXPECT_EQ(s.set_or(p, s.set_not(p)), kBddTrue);
  EXPECT_EQ(s.set_and(p, s.set_not(p)), kBddFalse);
}

TEST(IntervalBackend, ImpliesAndDisjointEdgeCases) {
  PacketSpace s(BackendKind::kInterval);
  const BddRef p24a = s.dst_prefix(pfx("10.0.0.0/24"));
  const BddRef p24b = s.dst_prefix(pfx("10.0.1.0/24"));  // adjacent, disjoint
  const BddRef p23 = s.dst_prefix(pfx("10.0.0.0/23"));   // their union
  EXPECT_TRUE(s.disjoint(p24a, p24b));
  EXPECT_TRUE(s.implies(p24a, p23));
  EXPECT_TRUE(s.implies(p24b, p23));
  EXPECT_FALSE(s.implies(p23, p24a));
  EXPECT_EQ(s.set_or(p24a, p24b), p23);
  // A union with a gap does NOT cover a range spanning the gap.
  const BddRef gappy = s.set_or(p24a, s.dst_prefix(pfx("10.0.2.0/24")));
  EXPECT_FALSE(s.implies(p23, gappy));
  EXPECT_FALSE(s.disjoint(p23, gappy));
  // diff/xor agree with their definitions.
  EXPECT_EQ(s.set_diff(p23, p24a), p24b);
  EXPECT_EQ(s.set_xor(p23, p24a), p24b);
  EXPECT_EQ(s.set_xor(p24a, p24b), p23);
}

TEST(IntervalBackend, RandomSetAlgebraMatchesBddOracle) {
  core::Rng rng{0x1A7e57};
  PacketSpace iv(BackendKind::kInterval);
  PacketSpace bd;  // kBdd
  // Build matched pools of random sets via identical op sequences, then
  // compare every observable: implies/disjoint matrices, sat counts,
  // minimal witnesses.
  std::vector<BddRef> is, bs;
  for (int i = 0; i < 10; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.next_in(4, 28));
    const net::Ipv4Prefix p{net::Ipv4Addr{static_cast<std::uint32_t>(rng.next())}, len};
    is.push_back(iv.dst_prefix(p));
    bs.push_back(bd.dst_prefix(p));
  }
  for (int i = 0; i < 40; ++i) {
    const std::size_t a = rng.next_in(0, is.size() - 1);
    const std::size_t b = rng.next_in(0, is.size() - 1);
    switch (rng.next_in(0, 4)) {
      case 0: is.push_back(iv.set_and(is[a], is[b])); bs.push_back(bd.set_and(bs[a], bs[b])); break;
      case 1: is.push_back(iv.set_or(is[a], is[b]));  bs.push_back(bd.set_or(bs[a], bs[b])); break;
      case 2: is.push_back(iv.set_diff(is[a], is[b])); bs.push_back(bd.set_diff(bs[a], bs[b])); break;
      case 3: is.push_back(iv.set_xor(is[a], is[b])); bs.push_back(bd.set_xor(bs[a], bs[b])); break;
      case 4: is.push_back(iv.set_not(is[a]));        bs.push_back(bd.set_not(bs[a])); break;
    }
  }
  for (std::size_t i = 0; i < is.size(); ++i) {
    ASSERT_EQ(iv.sat_count(is[i]), bd.sat_count(bs[i])) << "set " << i;
    ASSERT_EQ(iv.pick_one(is[i]), bd.pick_one(bs[i])) << "set " << i;
    for (std::size_t j = 0; j < is.size(); ++j) {
      ASSERT_EQ(iv.implies(is[i], is[j]), bd.implies(bs[i], bs[j])) << i << "," << j;
      ASSERT_EQ(iv.disjoint(is[i], is[j]), bd.disjoint(bs[i], bs[j])) << i << "," << j;
    }
  }
}

TEST(IntervalBackend, RefcountsAreHonest) {
  PacketSpace s(BackendKind::kInterval);
  const BddRef p = s.dst_prefix(pfx("10.0.0.0/8"));
  EXPECT_EQ(s.interval().ref_count(p), 0u);
  s.add_ref(p);
  s.add_ref(p);
  EXPECT_EQ(s.interval().ref_count(p), 2u);
  s.release(p);
  EXPECT_EQ(s.interval().ref_count(p), 1u);
  s.release(p);
  EXPECT_EQ(s.interval().ref_count(p), 0u);
  // Terminals are never pinned.
  s.add_ref(kBddTrue);
  s.release(kBddTrue);
  // gc() is a no-op for the append-only arena: the handle stays valid.
  EXPECT_EQ(s.gc(), 0u);
  EXPECT_EQ(s.dst_prefix(pfx("10.0.0.0/8")), p);
}

// ---- migration mechanics ---------------------------------------------------

TEST(BackendMigration, MultiFieldEncodersTriggerOnce) {
  int fired = 0;
  {
    PacketSpace s(BackendKind::kAuto);
    s.subscribe_migration([&] { ++fired; });
    ASSERT_EQ(s.active_backend(), BackendKind::kInterval);
    // Trivial non-dst fields do NOT migrate.
    EXPECT_EQ(s.src_prefix(pfx("0.0.0.0/0")), kBddTrue);
    EXPECT_EQ(s.proto(config::IpProto::kAny), kBddTrue);
    EXPECT_EQ(s.src_port_range(0, 0xFFFF), kBddTrue);
    EXPECT_EQ(s.active_backend(), BackendKind::kInterval);
    EXPECT_EQ(fired, 0);
    // A real source prefix cannot be an interval over dst: migrate.
    s.src_prefix(pfx("192.168.0.0/16"));
    EXPECT_EQ(s.active_backend(), BackendKind::kBdd);
    EXPECT_TRUE(s.migrated());
    EXPECT_EQ(fired, 1);
    // Further triggers are no-ops.
    s.proto(config::IpProto::kTcp);
    s.dst_port_range(80, 80);
    s.migrate_to_bdd();
    EXPECT_EQ(fired, 1);
  }
  // Each trigger kind migrates a fresh space.
  for (int kind = 0; kind < 3; ++kind) {
    PacketSpace s(BackendKind::kAuto);
    switch (kind) {
      case 0: s.proto(config::IpProto::kUdp); break;
      case 1: s.src_port_range(1024, 2048); break;
      case 2: {
        routing::FilterRule r;  // default rule matches everything — still an ACL
        s.filter_match(r);
        break;
      }
    }
    EXPECT_TRUE(s.migrated()) << "trigger kind " << kind;
  }
}

TEST(BackendMigration, EcIdsAndAnswersSurviveMigration) {
  PacketSpace s(BackendKind::kAuto);
  EcManager ecs(s);
  for (const net::Ipv4Prefix& p : script_prefixes()) {
    ecs.register_predicate(s.dst_prefix(p));
  }
  const std::size_t count_before = ecs.ec_count();
  // Record pre-migration observables, keyed by EC id.
  std::vector<std::optional<std::vector<bool>>> witnesses;
  std::vector<BddRef> old_atoms;
  for (EcId e = 0; e < count_before; ++e) {
    witnesses.push_back(s.pick_one(ecs.ec_bdd(e)));
    old_atoms.push_back(ecs.ec_bdd(e));
  }
  const BddRef retained = s.dst_prefix(pfx("10.1.0.0/16"));  // pre-migration handle

  s.src_prefix(pfx("192.168.0.0/16"));  // force migration
  ASSERT_TRUE(s.migrated());

  // Same partition, same ids, same witnesses; atoms now live as BDDs.
  ASSERT_EQ(ecs.ec_count(), count_before);
  for (EcId e = 0; e < count_before; ++e) {
    EXPECT_FALSE(is_interval_ref(ecs.ec_bdd(e))) << "atom " << e << " not rekeyed";
    EXPECT_EQ(s.pick_one(ecs.ec_bdd(e)), witnesses[e]) << "witness for EC " << e;
    // The old interval handle still denotes the same set through canonical().
    EXPECT_EQ(s.canonical(old_atoms[e]), ecs.ec_bdd(e));
  }
  check_partition(s, ecs);
  // Retained pre-migration handles keep answering queries...
  const auto members = ecs.ecs_in(retained);
  EXPECT_EQ(members, ecs.ecs_in(s.dst_prefix(pfx("10.1.0.0/16"))));
  EXPECT_FALSE(members.empty());
  // ...and the partition keeps refining across the representation switch.
  const auto splits = ecs.register_predicate(s.src_prefix(pfx("10.0.0.0/8")));
  EXPECT_FALSE(splits.empty());
  check_partition(s, ecs);
  // Pairing survives too: predicates registered pre-migration unregister
  // cleanly post-migration via canonical rekeying.
  ecs.unregister_predicate(retained);
  EXPECT_EQ(ecs.stats().unknown_unregisters, 0u);
}

TEST(BackendMigration, CompactAfterMigrationMatchesAllBddRun) {
  const auto run = [](BackendKind kind) {
    PacketSpace s(kind);
    EcManager ecs(s);
    const auto script = script_prefixes();
    for (const net::Ipv4Prefix& p : script) ecs.register_predicate(s.dst_prefix(p));
    s.migrate_to_bdd();  // no-op for kBdd
    for (std::size_t i = 0; i < script.size(); i += 2) {
      ecs.unregister_predicate(s.dst_prefix(script[i]));
    }
    const auto remap = ecs.compact();
    return std::make_pair(remap, ecs.ec_count());
  };
  const auto [remap_bdd, count_bdd] = run(BackendKind::kBdd);
  const auto [remap_auto, count_auto] = run(BackendKind::kAuto);
  ASSERT_EQ(remap_auto.has_value(), remap_bdd.has_value());
  if (remap_auto) {
    EXPECT_EQ(remap_auto->forward, remap_bdd->forward);
    EXPECT_EQ(remap_auto->new_count, remap_bdd->new_count);
  }
  EXPECT_EQ(count_auto, count_bdd);
}

TEST(BackendMigration, CopiesDropMigrationSubscriptions) {
  PacketSpace original(BackendKind::kAuto);
  int fired = 0;
  original.subscribe_migration([&] { ++fired; });
  original.dst_prefix(pfx("10.0.0.0/8"));

  // A value copy (what snapshots take) migrating must NOT fire the
  // original's listener — it would rekey a live EcManager against the
  // wrong space.
  PacketSpace copy = original;
  copy.src_prefix(pfx("1.2.0.0/16"));
  EXPECT_TRUE(copy.migrated());
  EXPECT_FALSE(original.migrated());
  EXPECT_EQ(fired, 0);

  // Copy-assign back (what restore does): set state rewinds, the original's
  // own subscription stays wired and fires on a later live migration.
  original = copy;
  EXPECT_TRUE(original.migrated());  // snapshot state carried over
  PacketSpace fresh(BackendKind::kAuto);
  int fresh_fired = 0;
  fresh.subscribe_migration([&] { ++fresh_fired; });
  original = fresh;  // rewind to a pre-migration state
  EXPECT_FALSE(original.migrated());
  original.src_prefix(pfx("1.2.0.0/16"));
  EXPECT_TRUE(original.migrated());
  EXPECT_EQ(fired, 1);        // the original's listener, not the donor's
  EXPECT_EQ(fresh_fired, 0);  // the donor's listener never crossed over
}

}  // namespace
}  // namespace rcfg::dpm
