#include "dpm/model.h"

#include <gtest/gtest.h>

#include "baseline/simulator.h"
#include "config/builders.h"
#include "core/rng.h"
#include "routing/generator.h"
#include "topo/generators.h"

namespace rcfg::dpm {
namespace {

net::Ipv4Prefix pfx(const char* s) { return *net::Ipv4Prefix::parse(s); }

routing::FibEntry fwd(topo::NodeId node, net::Ipv4Prefix p, std::vector<topo::IfaceId> ifaces) {
  routing::FibEntry e;
  e.node = node;
  e.prefix = p;
  e.action = routing::FibAction::kForward;
  e.out_ifaces = std::move(ifaces);
  return e;
}

routing::DataPlaneDelta delta_of(std::vector<std::pair<routing::FibEntry, dd::Weight>> entries) {
  routing::DataPlaneDelta d;
  for (auto& [e, w] : entries) d.fib.add(e, w);
  return d;
}

/// Oracle: the model's per-EC action must equal direct LPM evaluation over
/// the rule set for any probe address.
void check_against_lpm(PacketSpace& space, EcManager& ecs, const NetworkModel& model,
                       const dd::ZSet<routing::FibEntry>& fib, topo::NodeId nodes,
                       core::Rng& rng) {
  for (int probe = 0; probe < 64; ++probe) {
    const net::Ipv4Addr dst{static_cast<std::uint32_t>(rng.next())};
    const EcId ec = ecs.ec_of(space.dst_prefix(net::Ipv4Prefix{dst, 32}));
    for (topo::NodeId n = 0; n < nodes; ++n) {
      // LPM over the FIB rows of node n.
      const routing::FibEntry* best = nullptr;
      for (const auto& [e, w] : fib) {
        if (e.node != n || !e.prefix.contains(dst)) continue;
        if (best == nullptr || e.prefix.length() > best->prefix.length()) best = &e;
      }
      const PortKey expected = best != nullptr ? PortKey::of(*best) : PortKey::drop();
      ASSERT_EQ(model.port_of(n, ec), expected)
          << "node " << n << " dst " << dst.to_string();
    }
  }
}

TEST(Model, InsertMovesEcsFromDrop) {
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, 2);

  const auto e = fwd(0, pfx("10.0.0.0/8"), {3});
  const ModelDelta d = model.apply_batch(delta_of({{e, +1}}), UpdateOrder::kInsertFirst);

  EXPECT_EQ(d.stats.rule_inserts, 1u);
  EXPECT_EQ(d.stats.ec_moves, 1u);
  ASSERT_EQ(d.moves.size(), 1u);
  EXPECT_EQ(d.moves[0].from, PortKey::drop());
  EXPECT_EQ(d.moves[0].to, PortKey::of(e));
  EXPECT_EQ(d.moves[0].device, 0u);

  // Device 1 untouched.
  const EcId in = ecs.ec_of(space.dst_prefix(pfx("10.1.1.1/32")));
  EXPECT_EQ(model.port_of(0, in), PortKey::of(e));
  EXPECT_EQ(model.port_of(1, in), PortKey::drop());
}

TEST(Model, DeleteRevertsToCoveringRule) {
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, 1);

  const auto parent = fwd(0, pfx("10.0.0.0/8"), {1});
  const auto child = fwd(0, pfx("10.1.0.0/16"), {2});
  model.apply_batch(delta_of({{parent, +1}, {child, +1}}), UpdateOrder::kInsertFirst);

  const EcId in16 = ecs.ec_of(space.dst_prefix(pfx("10.1.9.9/32")));
  EXPECT_EQ(model.port_of(0, in16).ifaces, std::vector<topo::IfaceId>{2});

  const ModelDelta d = model.apply_batch(delta_of({{child, -1}}), UpdateOrder::kInsertFirst);
  EXPECT_EQ(d.stats.rule_deletes, 1u);
  EXPECT_EQ(model.port_of(0, in16).ifaces, std::vector<topo::IfaceId>{1});  // back to /8
}

TEST(Model, LpmShadowingLimitsEffectiveMatch) {
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, 1);

  model.apply_batch(delta_of({{fwd(0, pfx("10.1.0.0/16"), {2}), +1}}),
                    UpdateOrder::kInsertFirst);
  // Inserting the /8 afterwards must NOT steal the /16's packets.
  model.apply_batch(delta_of({{fwd(0, pfx("10.0.0.0/8"), {1}), +1}}),
                    UpdateOrder::kInsertFirst);

  const EcId in16 = ecs.ec_of(space.dst_prefix(pfx("10.1.0.1/32")));
  const EcId in8 = ecs.ec_of(space.dst_prefix(pfx("10.2.0.1/32")));
  EXPECT_EQ(model.port_of(0, in16).ifaces, std::vector<topo::IfaceId>{2});
  EXPECT_EQ(model.port_of(0, in8).ifaces, std::vector<topo::IfaceId>{1});
}

TEST(Model, ModificationOrderAsymmetry) {
  // The Table 3 effect: a modification (delete old + insert new) costs one
  // EC move insertion-first and two deletion-first, with identical final
  // state.
  const auto old_rule = fwd(0, pfx("10.0.0.0/8"), {1});
  const auto new_rule = fwd(0, pfx("10.0.0.0/8"), {2});
  const auto batch = [&] {
    return delta_of({{old_rule, -1}, {new_rule, +1}});
  };

  PacketSpace s1;
  EcManager e1(s1);
  NetworkModel m1(s1, e1, 1);
  m1.apply_batch(delta_of({{old_rule, +1}}), UpdateOrder::kInsertFirst);
  const ModelDelta d1 = m1.apply_batch(batch(), UpdateOrder::kInsertFirst);
  EXPECT_EQ(d1.stats.ec_moves, 1u);
  EXPECT_EQ(d1.stats.stale_ops, 1u);  // the delete no-ops

  PacketSpace s2;
  EcManager e2(s2);
  NetworkModel m2(s2, e2, 1);
  m2.apply_batch(delta_of({{old_rule, +1}}), UpdateOrder::kInsertFirst);
  const ModelDelta d2 = m2.apply_batch(batch(), UpdateOrder::kDeleteFirst);
  EXPECT_EQ(d2.stats.ec_moves, 2u);  // via the drop port and back

  // Net result identical.
  ASSERT_EQ(d1.moves.size(), 1u);
  ASSERT_EQ(d2.moves.size(), 1u);
  EXPECT_EQ(d1.moves[0].to, d2.moves[0].to);
  const EcId ec = e1.ec_of(s1.dst_prefix(pfx("10.5.0.1/32")));
  const EcId ec2 = e2.ec_of(s2.dst_prefix(pfx("10.5.0.1/32")));
  EXPECT_EQ(m1.port_of(0, ec), m2.port_of(0, ec2));
}

TEST(Model, IdenticalDeleteInsertCancelsInDelta) {
  // A delete and insert of the identical rule annihilate already in the
  // Z-set delta (weights +1 and -1 sum to zero), so the model sees an empty
  // batch — modifications only surface when old and new rules differ.
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, 1);
  const auto rule = fwd(0, pfx("10.0.0.0/8"), {1});
  model.apply_batch(delta_of({{rule, +1}}), UpdateOrder::kInsertFirst);

  const ModelDelta d =
      model.apply_batch(delta_of({{rule, -1}, {rule, +1}}), UpdateOrder::kDeleteFirst);
  EXPECT_EQ(d.stats.ec_moves, 0u);
  EXPECT_TRUE(d.empty());
}

TEST(Model, DeleteRevertingToEqualPortMovesNothing) {
  // Deleting a /16 whose action equals the covering /8's action: the ECs
  // "move" to the identical port, which must not count as churn.
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, 1);
  model.apply_batch(delta_of({{fwd(0, pfx("10.0.0.0/8"), {1}), +1},
                              {fwd(0, pfx("10.1.0.0/16"), {1}), +1}}),
                    UpdateOrder::kInsertFirst);

  const ModelDelta d = model.apply_batch(delta_of({{fwd(0, pfx("10.1.0.0/16"), {1}), -1}}),
                                         UpdateOrder::kDeleteFirst);
  EXPECT_EQ(d.stats.rule_deletes, 1u);
  EXPECT_EQ(d.stats.ec_moves, 0u);
  EXPECT_TRUE(d.moves.empty());
}

TEST(Model, SplitsInheritParentPorts) {
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, 2);

  // Device 0 forwards the /8; then a /16 rule on device 1 splits the /8 EC.
  model.apply_batch(delta_of({{fwd(0, pfx("10.0.0.0/8"), {1}), +1}}),
                    UpdateOrder::kInsertFirst);
  const ModelDelta d = model.apply_batch(delta_of({{fwd(1, pfx("10.1.0.0/16"), {2}), +1}}),
                                         UpdateOrder::kInsertFirst);
  ASSERT_EQ(d.splits.size(), 1u);

  // Device 0 must forward both halves of the former /8 EC.
  const EcId a = ecs.ec_of(space.dst_prefix(pfx("10.1.0.1/32")));
  const EcId b = ecs.ec_of(space.dst_prefix(pfx("10.2.0.1/32")));
  EXPECT_NE(a, b);
  EXPECT_EQ(model.port_of(0, a).ifaces, std::vector<topo::IfaceId>{1});
  EXPECT_EQ(model.port_of(0, b).ifaces, std::vector<topo::IfaceId>{1});
}

TEST(Model, AclBindingAffectsPermits) {
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, 1);

  routing::FilterRule deny;
  deny.node = 0;
  deny.iface = 7;
  deny.inbound = true;
  deny.priority = 0;
  deny.permit = false;
  deny.dst = pfx("10.0.0.0/8");
  routing::FilterRule permit_rest;
  permit_rest.node = 0;
  permit_rest.iface = 7;
  permit_rest.inbound = true;
  permit_rest.priority = 1;
  permit_rest.permit = true;

  routing::DataPlaneDelta d;
  d.filters.add(deny, +1);
  d.filters.add(permit_rest, +1);
  const ModelDelta md = model.apply_batch(d, UpdateOrder::kInsertFirst);
  EXPECT_FALSE(md.acl_affected.empty());

  const EcId denied = ecs.ec_of(space.dst_prefix(pfx("10.1.1.1/32")));
  const EcId allowed = ecs.ec_of(space.dst_prefix(pfx("192.168.1.1/32")));
  EXPECT_FALSE(model.permits(0, 7, true, denied));
  EXPECT_TRUE(model.permits(0, 7, true, allowed));
  EXPECT_TRUE(model.permits(0, 7, false, denied));  // other direction unbound
  EXPECT_TRUE(model.permits(0, 8, true, denied));   // other iface unbound

  // Removing the binding restores permit-all.
  routing::DataPlaneDelta undo;
  undo.filters.add(deny, -1);
  undo.filters.add(permit_rest, -1);
  const ModelDelta md2 = model.apply_batch(undo, UpdateOrder::kInsertFirst);
  EXPECT_FALSE(md2.acl_affected.empty());
  EXPECT_TRUE(model.permits(0, 7, true, denied));
}

TEST(Model, RealFibBatchesMatchLpmOracle) {
  // Feed the model with real generator output across a change sequence and
  // check it against direct LPM evaluation after every batch.
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  routing::IncrementalGenerator gen(t);

  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, t.node_count());
  core::Rng rng{99};

  auto step = [&](UpdateOrder order) {
    const routing::DataPlaneDelta d = gen.apply(cfg);
    model.apply_batch(d, order);
    check_against_lpm(space, ecs, model, gen.fib(), static_cast<topo::NodeId>(t.node_count()),
                      rng);
  };

  step(UpdateOrder::kInsertFirst);  // initial full FIB
  config::fail_link(cfg, t, 3);
  step(UpdateOrder::kInsertFirst);
  config::set_ospf_cost(cfg, "edge0-0", "to-agg0-1", 50);
  step(UpdateOrder::kDeleteFirst);
  config::restore_link(cfg, t, 3);
  step(UpdateOrder::kInterleaved);
}

TEST(Model, LookupReturnsLongestMatch) {
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, 2);

  const auto wide = fwd(0, pfx("10.0.0.0/8"), {1});
  const auto narrow = fwd(0, pfx("10.1.0.0/16"), {2});
  const auto host = fwd(0, pfx("10.1.2.3/32"), {3});
  model.apply_batch(delta_of({{wide, +1}, {narrow, +1}, {host, +1}}),
                    UpdateOrder::kInsertFirst);

  // The /32 shadows the /16 shadows the /8 — lookup must report the rule
  // that actually takes the packet, not just any cover.
  const auto at_host = model.lookup(0, *net::Ipv4Addr::parse("10.1.2.3"));
  ASSERT_TRUE(at_host.has_value());
  EXPECT_EQ(at_host->first, pfx("10.1.2.3/32"));
  EXPECT_EQ(at_host->second, PortKey::of(host));

  const auto at_16 = model.lookup(0, *net::Ipv4Addr::parse("10.1.9.9"));
  ASSERT_TRUE(at_16.has_value());
  EXPECT_EQ(at_16->first, pfx("10.1.0.0/16"));
  EXPECT_EQ(at_16->second, PortKey::of(narrow));

  const auto at_8 = model.lookup(0, *net::Ipv4Addr::parse("10.200.0.1"));
  ASSERT_TRUE(at_8.has_value());
  EXPECT_EQ(at_8->first, pfx("10.0.0.0/8"));
  EXPECT_EQ(at_8->second, PortKey::of(wide));
}

TEST(Model, LookupImplicitDrop) {
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, 2);
  model.apply_batch(delta_of({{fwd(0, pfx("10.0.0.0/8"), {1}), +1}}),
                    UpdateOrder::kInsertFirst);

  // Outside every rule: nullopt (implicit drop), distinct from an explicit
  // drop rule which would return a PortKey.
  EXPECT_FALSE(model.lookup(0, *net::Ipv4Addr::parse("192.168.1.1")).has_value());
  // Same address on a device with no rules at all.
  EXPECT_FALSE(model.lookup(1, *net::Ipv4Addr::parse("10.1.1.1")).has_value());

  // After deleting the rule, the former match reverts to implicit drop.
  model.apply_batch(delta_of({{fwd(0, pfx("10.0.0.0/8"), {1}), -1}}),
                    UpdateOrder::kInsertFirst);
  EXPECT_FALSE(model.lookup(0, *net::Ipv4Addr::parse("10.1.1.1")).has_value());
}

routing::FilterRule filter(topo::IfaceId iface, std::uint32_t priority, bool permit,
                           net::Ipv4Prefix dst) {
  routing::FilterRule r;
  r.node = 0;
  r.iface = iface;
  r.inbound = true;
  r.priority = priority;
  r.permit = permit;
  r.dst = dst;
  return r;
}

config::Flow flow_to(const char* dst) {
  config::Flow f;
  f.src = *net::Ipv4Addr::parse("172.16.0.1");
  f.dst = *net::Ipv4Addr::parse(dst);
  return f;
}

TEST(Model, FilterVerdictFirstMatchAndImplicitDeny) {
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, 1);

  // Priority order matters: the specific deny sits before the broad permit,
  // so a 10.1/16 flow must report the deny rule even though both match.
  routing::DataPlaneDelta d;
  d.filters.add(filter(7, 0, false, pfx("10.1.0.0/16")), +1);
  d.filters.add(filter(7, 1, true, pfx("10.0.0.0/8")), +1);
  model.apply_batch(d, UpdateOrder::kInsertFirst);

  const auto denied = model.filter_verdict(0, 7, true, flow_to("10.1.2.3"));
  EXPECT_TRUE(denied.has_acl);
  EXPECT_FALSE(denied.permit);
  ASSERT_TRUE(denied.rule.has_value());
  EXPECT_EQ(denied.rule->dst, pfx("10.1.0.0/16"));
  EXPECT_EQ(denied.rule->priority, 0u);

  const auto permitted = model.filter_verdict(0, 7, true, flow_to("10.2.0.1"));
  EXPECT_TRUE(permitted.has_acl);
  EXPECT_TRUE(permitted.permit);
  ASSERT_TRUE(permitted.rule.has_value());
  EXPECT_EQ(permitted.rule->dst, pfx("10.0.0.0/8"));

  // No rule matches: ACL bound => implicit deny, and no deciding rule.
  const auto implicit = model.filter_verdict(0, 7, true, flow_to("192.168.1.1"));
  EXPECT_TRUE(implicit.has_acl);
  EXPECT_FALSE(implicit.permit);
  EXPECT_FALSE(implicit.rule.has_value());

  // Nothing bound on that iface/direction: permit with has_acl=false.
  const auto unbound_dir = model.filter_verdict(0, 7, false, flow_to("10.1.2.3"));
  EXPECT_FALSE(unbound_dir.has_acl);
  EXPECT_TRUE(unbound_dir.permit);
  const auto unbound_iface = model.filter_verdict(0, 8, true, flow_to("10.1.2.3"));
  EXPECT_FALSE(unbound_iface.has_acl);
  EXPECT_TRUE(unbound_iface.permit);
}

TEST(Model, FilterVerdictAgreesWithPermits) {
  // The rule-level trace verdict and the EC-level permit bitmap are two
  // views of the same ACL; they must agree on every probe.
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, 1);

  routing::DataPlaneDelta d;
  d.filters.add(filter(3, 0, false, pfx("10.1.0.0/16")), +1);
  d.filters.add(filter(3, 1, true, pfx("10.0.0.0/8")), +1);
  model.apply_batch(d, UpdateOrder::kInsertFirst);

  for (const char* probe : {"10.1.2.3", "10.2.0.1", "192.168.1.1", "10.1.255.255"}) {
    const config::Flow f = flow_to(probe);
    const EcId ec = ecs.ec_of(space.dst_prefix(net::Ipv4Prefix{f.dst, 32}));
    EXPECT_EQ(model.filter_verdict(0, 3, true, f).permit, model.permits(0, 3, true, ec))
        << "probe " << probe;
  }
}

TEST(Model, RuleCountTracksFib) {
  const topo::Topology t = topo::make_ring(4);
  config::NetworkConfig cfg = config::build_ospf_network(t);
  routing::IncrementalGenerator gen(t);
  PacketSpace space;
  EcManager ecs(space);
  NetworkModel model(space, ecs, t.node_count());
  model.apply_batch(gen.apply(cfg), UpdateOrder::kInsertFirst);
  EXPECT_EQ(model.rule_count(), gen.fib().size());
}

}  // namespace
}  // namespace rcfg::dpm
